package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/transport"
	"github.com/lpd-epfl/mvtl/internal/wire"
)

// startEcho serves addr through ServeConn (dogfooding the server half
// of the mux): every frame is answered with its own body after an
// optional random delay, as type f.Type+1. Delayed frames run as
// "blocking" handlers, so replies are deliberately reordered relative
// to arrival. It returns the resolved listen address (TCP binds
// ephemeral ports) and a counter of accepted connections.
func startEcho(tb testing.TB, n transport.Network, addr string, delay time.Duration) (string, *atomic.Int64) {
	tb.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = l.Close() })
	var accepted atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			tb.Cleanup(func() { _ = conn.Close() })
			go ServeConn(conn,
				func(wire.MsgType) bool { return delay > 0 },
				func(f *wire.FrameBuf, reply Reply) {
					if delay > 0 {
						time.Sleep(time.Duration(rand.Int63n(int64(delay))))
					}
					// The request body is borrowed; reply copies it into
					// the response frame before the handler returns.
					reply(f.Type()+1, wire.Raw(f.Body()))
				}, nil)
		}
	}()
	return l.Addr(), &accepted
}

func echoServer(t *testing.T, n transport.Network, addr string, delay time.Duration) *atomic.Int64 {
	t.Helper()
	_, accepted := startEcho(t, n, addr, delay)
	return accepted
}

func TestCallMultiplexing(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "echo", 2*time.Millisecond)
	c := NewClient(n, "echo", 1)
	defer func() { _ = c.Close() }()

	const inflight = 24
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if _, err := c.Call(ctx, 0, wire.TReleaseReq, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCallTimeout(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{Base: 500 * time.Millisecond})
	echoServer(t, n, "slow", 0)
	c := NewClient(n, "slow", 1)
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, 0, wire.TReleaseReq, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestCallAfterCloseFailsFast(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "echo2", 0)
	c := NewClient(n, "echo2", 2)
	if _, err := c.Call(context.Background(), 0, wire.TReleaseReq, nil); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	_, err := c.Call(context.Background(), 0, wire.TReleaseReq, nil)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if !strings.Contains(err.Error(), "echo2") {
		t.Fatalf("error must name the server address: %v", err)
	}
	if err := c.Cast(0, wire.TReleaseReq, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("cast after close: want ErrClosed, got %v", err)
	}
}

// TestCloseMidCallFailsFast is the shutdown regression test: a call in
// flight when the connection closes must fail fast with ErrClosed
// (wrapped with the server address) — never hang, and never be handed
// some other call's response.
func TestCloseMidCallFailsFast(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	// A sink server that accepts frames and never replies, so the call
	// below can only finish via the close path.
	l, err := n.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn transport.Conn) {
				for {
					if _, err := conn.Recv(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	c := NewClient(n, "sink", 1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), 0, wire.TReleaseReq, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the call get in flight
	_ = c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
		if !strings.Contains(err.Error(), "sink") {
			t.Fatalf("error must name the server address: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung across Close")
	}
}

func TestPeerDisappearsMidCall(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	l, err := n.Listen("flaky")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	c := NewClient(n, "flaky", 1)
	defer func() { _ = c.Close() }()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, err := c.Call(ctx, 0, wire.TReleaseReq, nil)
		done <- err
	}()
	srvConn := <-accepted
	time.Sleep(10 * time.Millisecond)
	_ = srvConn.Close() // server dies mid-call
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed when the peer drops, got %v", err)
	}
}

// TestPoolShardsByFlow pins the flow→connection mapping: distinct flows
// spread over the pool (so one saturated socket does not carry
// everyone), while one flow sticks to one connection (per-flow FIFO).
func TestPoolShardsByFlow(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	accepted := echoServer(t, n, "pool", 0)
	const size = 4
	c := NewClient(n, "pool", size)
	defer func() { _ = c.Close() }()
	ctx := context.Background()
	for flow := uint64(0); flow < 2*size; flow++ {
		if _, err := c.Call(ctx, flow, wire.TReleaseReq, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := accepted.Load(); got != size {
		t.Fatalf("expected %d pooled connections after %d flows, got %d", size, 2*size, got)
	}
}

// TestMuxStressNoCrossTalk floods a pooled client from many goroutines
// while the echo server replies after random delays — responses come
// back deliberately reordered — and checks every call receives exactly
// its own response. Run with -race.
func TestMuxStressNoCrossTalk(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	echoServer(t, n, "stress", 3*time.Millisecond)
	c := NewClient(n, "stress", 3)
	defer func() { _ = c.Close() }()

	const goroutines = 16
	calls := 150
	if testing.Short() {
		calls = 30
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < calls; i++ {
				var body [16]byte
				binary.LittleEndian.PutUint64(body[:8], uint64(g))
				binary.LittleEndian.PutUint64(body[8:], uint64(i))
				// Spread flows so every goroutine exercises every
				// pooled connection.
				f, err := c.Call(ctx, uint64(g*calls+i), wire.TReleaseReq, wire.Raw(body[:]))
				if err != nil {
					errs <- err
					return
				}
				if len(f.Body()) != 16 ||
					binary.LittleEndian.Uint64(f.Body()[:8]) != uint64(g) ||
					binary.LittleEndian.Uint64(f.Body()[8:]) != uint64(i) {
					errs <- fmt.Errorf("goroutine %d call %d got foreign response body %x", g, i, f.Body())
					return
				}
				f.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServeConnInlineOrder checks the inline path: non-spawned frames
// are handled in arrival order on the read loop, which is the FIFO
// guarantee coordinators rely on for fire-and-forget casts.
func TestServeConnInlineOrder(t *testing.T) {
	n := transport.NewMem(transport.LatencyModel{})
	l, err := n.Listen("fifo")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	var mu sync.Mutex
	var order []uint64
	served := make(chan struct{}, 64)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		ServeConn(conn, nil, func(f *wire.FrameBuf, reply Reply) {
			mu.Lock()
			order = append(order, f.ID())
			mu.Unlock()
			served <- struct{}{}
		}, nil)
	}()

	conn, err := n.Dial("fifo")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	const frames = 32
	for i := 1; i <= frames; i++ {
		fb := wire.GetFrameBuf()
		if err := fb.SetFrame(uint64(i), wire.TReleaseReq, nil); err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(fb); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		<-served
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("inline handling out of order: position %d got id %d", i, id)
		}
	}
}
