package deadlock

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/wire"
)

func edge(w, h uint64, key string) wire.WaitEdge {
	return wire.WaitEdge{Waiter: w, Holder: h, Key: key}
}

func TestFindVictimsNoCycle(t *testing.T) {
	edges := []wire.WaitEdge{edge(1, 2, "a"), edge(2, 3, "b"), edge(4, 3, "c")}
	if v := FindVictims(edges); len(v) != 0 {
		t.Fatalf("acyclic graph produced victims: %+v", v)
	}
	if v := FindVictims(nil); len(v) != 0 {
		t.Fatalf("empty graph produced victims: %+v", v)
	}
}

func TestFindVictimsTwoCycle(t *testing.T) {
	// The classic cross-server AB-BA: 7 waits on 9 (key b), 9 waits on
	// 7 (key a). Victim is the lower id, blocked on b.
	edges := []wire.WaitEdge{edge(7, 9, "b"), edge(9, 7, "a")}
	v := FindVictims(edges)
	if len(v) != 1 || v[0].Txn != 7 || v[0].Key != "b" {
		t.Fatalf("victims = %+v", v)
	}
}

func TestFindVictimsTransitive(t *testing.T) {
	edges := []wire.WaitEdge{edge(5, 6, "x"), edge(6, 8, "y"), edge(8, 5, "z")}
	v := FindVictims(edges)
	if len(v) != 1 || v[0].Txn != 5 || v[0].Key != "x" {
		t.Fatalf("victims = %+v", v)
	}
}

func TestFindVictimsDisjointCycles(t *testing.T) {
	edges := []wire.WaitEdge{
		edge(1, 2, "a"), edge(2, 1, "b"),
		edge(10, 11, "c"), edge(11, 10, "d"),
		edge(20, 21, "e"), // acyclic appendix
	}
	v := FindVictims(edges)
	if len(v) != 2 || v[0].Txn != 1 || v[1].Txn != 10 {
		t.Fatalf("victims = %+v", v)
	}
}

func TestFindVictimsPathIntoCycle(t *testing.T) {
	// 1 waits on the cycle {2,3} without being in it: aborting the
	// cycle's victim (2) frees 1, so 1 must not be shot.
	edges := []wire.WaitEdge{edge(1, 2, "a"), edge(2, 3, "b"), edge(3, 2, "c")}
	v := FindVictims(edges)
	if len(v) != 1 || v[0].Txn != 2 || v[0].Key != "b" {
		t.Fatalf("victims = %+v", v)
	}
}

// TestFindVictimsDeterministic: the same edge set, shuffled, always
// yields the same victims — the property that lets several coordinators
// fire at the same transaction instead of one each.
func TestFindVictimsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	base := []wire.WaitEdge{
		edge(3, 8, "a"), edge(8, 12, "b"), edge(12, 3, "c"),
		edge(40, 41, "d"), edge(41, 40, "e"),
		edge(100, 3, "f"),
	}
	want := fmt.Sprintf("%+v", FindVictims(base))
	for i := 0; i < 50; i++ {
		shuffled := append([]wire.WaitEdge(nil), base...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := fmt.Sprintf("%+v", FindVictims(shuffled)); got != want {
			t.Fatalf("iteration %d: %s != %s", i, got, want)
		}
	}
}

func TestGraphObserveReplacesSnapshots(t *testing.T) {
	g := NewGraph()
	g.Observe("s1", []wire.WaitEdge{edge(1, 2, "a")})
	g.Observe("s2", []wire.WaitEdge{edge(2, 1, "b")})
	if v := g.Victims(); len(v) != 1 || v[0].Txn != 1 {
		t.Fatalf("victims = %+v", v)
	}
	// A fresh snapshot from s2 without the edge dissolves the cycle.
	g.Observe("s2", nil)
	if v := g.Victims(); len(v) != 0 {
		t.Fatalf("stale snapshot survived: %+v", v)
	}
	g.Observe("s1", nil)
	if len(g.Edges()) != 0 {
		t.Fatal("graph not empty after clearing both sources")
	}
}

func TestGraphReset(t *testing.T) {
	g := NewGraph()
	g.Observe("s1", []wire.WaitEdge{edge(1, 2, "a"), edge(2, 1, "b")})
	g.Reset()
	if v := g.Victims(); len(v) != 0 {
		t.Fatalf("reset graph produced victims: %+v", v)
	}
}

// BenchmarkFindVictims measures one detector scan over a graph with
// many waiting transactions and a single cycle buried in it — the
// common contended shape (long chains, rare cycles).
func BenchmarkFindVictims(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("waiters%d", n), func(b *testing.B) {
			edges := make([]wire.WaitEdge, 0, n+2)
			for i := 0; i < n; i++ {
				edges = append(edges, edge(uint64(1000+i), uint64(1000+i+1), "k"))
			}
			edges = append(edges, edge(7, 9, "b"), edge(9, 7, "a"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := FindVictims(edges); len(v) != 1 {
					b.Fatalf("victims = %+v", v)
				}
			}
		})
	}
}
