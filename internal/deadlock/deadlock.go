// Package deadlock implements the coordinator side of cross-server
// deadlock detection for the distributed MVTL algorithm.
//
// A single storage server detects wait-for cycles among the
// transactions parked on its own lock tables (lock.WaitGraph), but a
// cycle spanning servers — transaction A parked on server 1 waiting for
// B, B parked on server 2 waiting for A — is invisible to every local
// graph, and before this package existed it was resolved only by the
// 1s lock-wait timeout. The protocol here converts that stall into a
// sub-100ms abort-and-retry:
//
//   - Edge export. Every server labels its wait-for edges with the key
//     of the blocking lock table and exports them two ways: piggybacked
//     on lock responses that report conflicts (wire.ReadLockResp and
//     wire.WriteLockBatchResp carry an Edges field), and on demand via
//     the wire.TWaitGraphReq poll. Piggybacking is free but only helps
//     the requests that come back; a coordinator whose request is
//     parked inside a cycle gets no response at all, so while any of
//     its lock RPCs is outstanding it polls every server on a short
//     interval.
//
//   - Graph assembly. The coordinator merges the per-server snapshots
//     into one global graph (Graph.Observe replaces a server's slice
//     wholesale — each snapshot supersedes the previous view of that
//     server) and runs cycle detection over the union.
//
//   - Confirmation. Per-server snapshots are taken at different
//     moments, so an apparent cycle may be stale. Mirroring the
//     confirm-under-full-lock discipline of lock.WaitGraph, the
//     detector re-polls and only acts on a cycle observed twice; the
//     receiving server additionally validates that the victim is still
//     waiting there before doing anything.
//
//   - Victim abort. For each confirmed cycle the victim is chosen
//     deterministically — the lowest transaction id in the cycle — so
//     that several coordinators detecting the same cycle concurrently
//     agree on who dies and cannot shoot down one transaction each.
//     The coordinator sends wire.TVictimAbortReq to the server owning
//     the key the victim blocks on (that is where it is parked); the
//     server aborts the victim through the transaction's commitment
//     object (the existing decide path) and wakes the parked
//     acquisition with a deadlock error. The victim's coordinator sees
//     wire.StatusDeadlock, aborts, and can retry immediately — the
//     conflicting work was killed on purpose, unlike an ordinary
//     conflict where backing off is the right policy.
//
// This package holds the pure parts — the mergeable graph and the
// cycle/victim computation — so they can be tested and benchmarked
// without a cluster; the polling goroutine lives in package client.
package deadlock

import (
	"sort"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/wire"
)

// Victim identifies the transaction to abort for one detected cycle:
// the lowest transaction id in the cycle, and the key it is blocked on
// (which names the server where it is parked).
type Victim struct {
	Txn uint64
	Key string
}

// Graph accumulates per-server wait-for snapshots and finds cycles in
// their union. It is safe for concurrent use: transaction goroutines
// feed piggybacked edges while the detector goroutine polls and scans.
type Graph struct {
	mu    sync.Mutex
	snaps map[string][]wire.WaitEdge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{snaps: make(map[string][]wire.WaitEdge)}
}

// Observe replaces the stored snapshot of source's wait-for edges.
// Passing an empty slice clears the source — a server that reports no
// waiters has no edges to contribute.
func (g *Graph) Observe(source string, edges []wire.WaitEdge) {
	g.mu.Lock()
	if len(edges) == 0 {
		delete(g.snaps, source)
	} else {
		g.snaps[source] = edges
	}
	g.mu.Unlock()
}

// Reset drops every snapshot, used when the coordinator has no blocked
// requests left (stale edges must not trigger aborts later).
func (g *Graph) Reset() {
	g.mu.Lock()
	g.snaps = make(map[string][]wire.WaitEdge)
	g.mu.Unlock()
}

// Edges returns the union of all current snapshots.
func (g *Graph) Edges() []wire.WaitEdge {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []wire.WaitEdge
	for _, es := range g.snaps {
		out = append(out, es...)
	}
	return out
}

// Victims runs cycle detection over the union of snapshots and returns
// one Victim per disjoint cycle found, ordered by transaction id. Nodes
// on a path into a cycle (waiting on the cycle without being part of
// it) are not victims — aborting the cycle frees them.
func (g *Graph) Victims() []Victim {
	return FindVictims(g.Edges())
}

// FindVictims returns one Victim per disjoint cycle in edges: the
// lowest transaction id of each cycle, paired with the key of its
// outgoing edge inside the cycle. The choice is deterministic in the
// edge set, so independent detectors observing the same graph agree.
func FindVictims(edges []wire.WaitEdge) []Victim {
	if len(edges) == 0 {
		return nil
	}
	adj := make(map[uint64][]wire.WaitEdge, len(edges))
	for _, e := range edges {
		if e.Waiter == e.Holder {
			continue // self-loops are resolved locally, never exported
		}
		adj[e.Waiter] = append(adj[e.Waiter], e)
	}
	// Sort adjacency for determinism: map iteration order must not
	// influence which cycle a shared node is attributed to.
	nodes := make([]uint64, 0, len(adj))
	for n, es := range adj {
		nodes = append(nodes, n)
		sort.Slice(es, func(i, j int) bool { return es[i].Holder < es[j].Holder })
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[uint64]int, len(adj))
	var victims []Victim

	// Iterative DFS with an explicit path stack; a gray hit means the
	// path from that node to the top of the stack is a cycle.
	type frame struct {
		node uint64
		next int // next adjacency index to explore
	}
	for _, start := range nodes {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next >= len(adj[f.node]) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			e := adj[f.node][f.next]
			f.next++
			switch color[e.Holder] {
			case white:
				color[e.Holder] = gray
				stack = append(stack, frame{node: e.Holder})
			case gray:
				// Cycle: e.Holder ... top of stack. Collect its nodes,
				// pick the minimum as victim, and record the key of the
				// victim's outgoing edge within the cycle.
				inCycle := map[uint64]bool{}
				for i := len(stack) - 1; i >= 0; i-- {
					inCycle[stack[i].node] = true
					if stack[i].node == e.Holder {
						break
					}
				}
				v := Victim{Txn: ^uint64(0)}
				for n := range inCycle {
					if n < v.Txn {
						v.Txn = n
					}
				}
				for _, ve := range adj[v.Txn] {
					if inCycle[ve.Holder] {
						v.Key = ve.Key
						break
					}
				}
				victims = append(victims, v)
				// Retire the whole DFS path (cycle nodes and the path
				// leading into it) so one scan reports each disjoint
				// cycle once and no node is left gray off-stack; an
				// interlocking cycle hidden behind these nodes is found
				// by the next poll, after the victim dies.
				for i := range stack {
					color[stack[i].node] = black
				}
				stack = stack[:0]
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Txn < victims[j].Txn })
	return victims
}
