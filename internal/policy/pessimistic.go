package policy

import (
	"context"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// Pessimistic is the MVTL-Pessimistic policy (Alg. 9), which emulates
// pessimistic (two-phase-locking) concurrency control inside MVTL
// (Theorem 6): writes lock every timestamp up to +∞, reads lock from the
// latest version to +∞, both waiting on unfrozen conflicts. Because +∞
// can only be held by one writer (or the readers) of a key at a time,
// ownership of the timeline tail is exactly an object lock. Commits pick
// the smallest commonly locked timestamp and garbage collect, releasing
// the tail for the next transaction.
//
// Like any pessimistic scheme it can deadlock; bound transactions with a
// context deadline to convert deadlocks into aborts.
type Pessimistic struct{}

var _ core.Policy = Pessimistic{}

// NewPessimistic returns the pessimistic policy.
func NewPessimistic() Pessimistic { return Pessimistic{} }

// Name implements core.Policy.
func (Pessimistic) Name() string { return "mvtl-pessimistic" }

// Begin implements core.Policy.
func (Pessimistic) Begin(*core.Txn) {}

// WriteLocks implements core.Policy (Alg. 9 lines 1-3): write-lock all
// timestamps, waiting on unfrozen conflicts and skipping frozen history.
func (Pessimistic) WriteLocks(ctx context.Context, tx *core.Txn, k string) error {
	res, err := tx.Key(k).Locks.AcquireWrite(ctx, tx.Owner(), allWritable(),
		lock.Options{Wait: true, Partial: true})
	if err != nil {
		return fmt.Errorf("write-lock %q: %w", k, err)
	}
	if !res.Got.Contains(timestamp.Infinity) {
		// Frozen locks can exclude finite prefixes but never the tail;
		// failing to get +∞ means another writer raced us.
		return fmt.Errorf("write-lock %q: tail not acquired", k)
	}
	return nil
}

// Read implements core.Policy (Alg. 9 lines 4-11): read the latest
// version and read-lock from just above it to +∞.
func (Pessimistic) Read(ctx context.Context, tx *core.Txn, k string) (version.Version, error) {
	v, _, err := readUpTo(ctx, tx, tx.Key(k), timestamp.Infinity, true)
	return v, err
}

// CommitLocks implements core.Policy: nothing to acquire at commit.
func (Pessimistic) CommitLocks(context.Context, *core.Txn) error { return nil }

// CommitTS implements core.Policy: the smallest timestamp of the
// timeline tail (Alg. 9 line 13 under the downward lock scan, which
// stops at frozen history) — one past the latest committed or read data
// on every touched key, mirroring 2PL's real-time ordering.
func (Pessimistic) CommitTS(_ *core.Txn, candidates timestamp.Set) (timestamp.Timestamp, bool) {
	return tailMin(candidates)
}

// CommitGC implements core.Policy: always garbage collect, releasing the
// timeline tail so the next transaction can lock it (Alg. 9 line 14).
func (Pessimistic) CommitGC(*core.Txn) bool { return true }
