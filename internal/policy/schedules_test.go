package policy_test

// The deterministic schedule tests reproduce, step by step, the example
// schedules of the paper (§5.3, §5.5, Theorem 2, Theorem 3) and verify
// that each policy behaves as claimed: where timestamp ordering aborts,
// the corresponding MVTL policy commits, and vice versa.

import (
	"context"
	"errors"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/policy"
)

// procClock returns a Process clock pinned at time t with process id p.
func procClock(t int64, p int32) *clock.Process {
	var m clock.Manual
	m.Set(t)
	return clock.NewProcess(&m, p)
}

// TestSerialAbortUnderTO reproduces the §5.3 schedule: with unsynchronized
// clocks, T2 (clock 20) reads X and commits, then T1 (clock 10) writes X
// and must abort under timestamp ordering — an abort in a fully serial
// execution.
func TestSerialAbortUnderTO(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewTO(clock.NewProcess(&src, 0)), core.Options{})
	ctx := context.Background()

	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(20, 2)
	if _, err := t2.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); err != nil {
		t.Fatalf("T2 must commit: %v", err)
	}

	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(10, 1)
	if err := t1.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("T1 must suffer the serial abort under TO, got %v", err)
	}
}

// TestNoSerialAbortUnderEpsilonClock runs the same §5.3 schedule under
// MVTL-ε-clock with ε covering the skew: no abort (Theorem 4).
func TestNoSerialAbortUnderEpsilonClock(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewEpsilonClock(clock.NewProcess(&src, 0), 15), core.Options{})
	ctx := context.Background()

	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(20, 2)
	if _, err := t2.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); err != nil {
		t.Fatalf("T2 must commit: %v", err)
	}

	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(10, 1)
	if err := t1.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); err != nil {
		t.Fatalf("ε-clock must avoid the serial abort (Theorem 4): %v", err)
	}
}

// TestSerialExecutionNeverAbortsEpsilonClock exercises Theorem 4 further:
// a long serial execution with clocks skewed within ±ε never aborts.
func TestSerialExecutionNeverAbortsEpsilonClock(t *testing.T) {
	const eps = 50
	var base clock.Manual
	base.Set(1000)
	var rec history.Recorder
	db := core.New(policy.NewEpsilonClock(clock.NewProcess(&base, 0), eps), core.Options{Recorder: &rec})
	ctx := context.Background()

	skews := []int64{-eps, eps, -eps / 2, eps / 2, 0, -eps, eps}
	for i := 0; i < 40; i++ {
		base.Advance(3) // real time moves a little between transactions
		skew := skews[i%len(skews)]
		tx, _ := db.Begin(ctx)
		tx.Clock = clock.NewProcess(clock.NewSkewed(&base, skew), int32(i+1))
		if _, err := tx.Read(ctx, "x"); err != nil {
			t.Fatalf("txn %d read: %v", i, err)
		}
		if err := tx.Write(ctx, "x", []byte{byte(i)}); err != nil {
			t.Fatalf("txn %d write: %v", i, err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatalf("serial txn %d aborted under ε-clock: %v", i, err)
		}
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSerialExecutionAbortsUnderTOWithSkew shows the contrast: the same
// serial skewed workload does abort under timestamp ordering.
func TestSerialExecutionAbortsUnderTOWithSkew(t *testing.T) {
	var base clock.Manual
	base.Set(1000)
	db := core.New(policy.NewTO(clock.NewProcess(&base, 0)), core.Options{})
	ctx := context.Background()

	aborts := 0
	skews := []int64{50, -50}
	for i := 0; i < 10; i++ {
		base.Advance(3)
		tx, _ := db.Begin(ctx)
		tx.Clock = clock.NewProcess(clock.NewSkewed(&base, skews[i%2]), int32(i+1))
		if _, err := tx.Read(ctx, "x"); err != nil {
			aborts++
			continue
		}
		if err := tx.Write(ctx, "x", []byte{byte(i)}); err != nil {
			aborts++
			continue
		}
		if err := tx.Commit(ctx); err != nil {
			aborts++
		}
	}
	if aborts == 0 {
		t.Fatal("TO with skewed clocks should suffer serial aborts")
	}
}

// TestGhostAbortUnderTO reproduces the §5.5 schedule:
//
//	T3: R(X) C
//	T2: R(Y)      W(X) A        (aborted by T3's read)
//	T1:                W(Y) A   (ghost abort: conflicts only with aborted T2)
func TestGhostAbortUnderTO(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewTO(clock.NewProcess(&src, 0)), core.Options{})
	ctx := context.Background()

	t3, _ := db.Begin(ctx)
	t3.Clock = procClock(30, 3)
	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(20, 2)
	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(10, 1)

	if _, err := t3.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(ctx, "x", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("T2 must abort (T3 read X above its timestamp): %v", err)
	}
	// T2 has aborted; T1 only touches Y, conflicting only with the
	// aborted T2. Under TO the leftover read lock still kills T1.
	if err := t1.Write(ctx, "y", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("T1 must suffer the ghost abort under TO: %v", err)
	}
}

// TestNoGhostAbortUnderGhostbuster runs the same §5.5 schedule under
// MVTL-Ghostbuster: T2 still aborts, but its garbage collection removes
// its read locks, so T1 commits (Theorem 7).
func TestNoGhostAbortUnderGhostbuster(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewGhostbuster(clock.NewProcess(&src, 0)), core.Options{})
	ctx := context.Background()

	t3, _ := db.Begin(ctx)
	t3.Clock = procClock(30, 3)
	t2, _ := db.Begin(ctx)
	t2.Clock = procClock(20, 2)
	t1, _ := db.Begin(ctx)
	t1.Clock = procClock(10, 1)

	if _, err := t3.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(ctx, "x", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("T2 must still abort: %v", err)
	}
	if err := t1.Write(ctx, "y", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); err != nil {
		t.Fatalf("Ghostbuster must avoid the ghost abort (Theorem 7): %v", err)
	}
}

// TestPrefCommitsWhereTOAborts reproduces the Theorem 2(b) workload
// W1(Y) C1  R2(X) R3(Y) C3  W2(Y) C2 with t1 < t2 < t3 and
// max A(t2) < t1: MVTO+/MVTL-TO aborts T2, MVTL-Pref commits it at the
// alternative timestamp.
func TestPrefCommitsWhereTOAborts(t *testing.T) {
	ctx := context.Background()

	runSchedule := func(db *core.DB) error {
		t1, _ := db.Begin(ctx)
		t1.Clock = procClock(100, 1)
		t2, _ := db.Begin(ctx)
		t2.Clock = procClock(200, 2)
		t3, _ := db.Begin(ctx)
		t3.Clock = procClock(300, 3)

		if err := t1.Write(ctx, "y", []byte("t1")); err != nil {
			return err
		}
		if err := t1.Commit(ctx); err != nil {
			return err
		}
		if _, err := t2.Read(ctx, "x"); err != nil {
			return err
		}
		if _, err := t3.Read(ctx, "y"); err != nil {
			return err
		}
		if err := t3.Commit(ctx); err != nil {
			return err
		}
		if err := t2.Write(ctx, "y", []byte("t2")); err != nil {
			return err
		}
		return t2.Commit(ctx)
	}

	var src1 clock.Logical
	toDB := core.New(policy.NewTO(clock.NewProcess(&src1, 0)), core.Options{})
	if err := runSchedule(toDB); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("TO must abort T2, got %v", err)
	}

	// A(t) = {t-150}: alternative below t1=100 for t2=200.
	var src2 clock.Logical
	prefDB := core.New(policy.NewPref(clock.NewProcess(&src2, 0), policy.OffsetAlternatives(-150)), core.Options{})
	if err := runSchedule(prefDB); err != nil {
		t.Fatalf("Pref must commit T2 at the alternative timestamp (Theorem 2b): %v", err)
	}
}

// TestPrefMatchesTOOnCleanWorkload checks Theorem 2(a) on a conflict-free
// workload: both policies commit everything.
func TestPrefMatchesTOOnCleanWorkload(t *testing.T) {
	ctx := context.Background()
	for _, mk := range []func() *core.DB{
		func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewTO(clock.NewProcess(&src, 0)), core.Options{})
		},
		func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewPref(clock.NewProcess(&src, 0), policy.OffsetAlternatives(-5)), core.Options{})
		},
	} {
		db := mk()
		base := int64(100)
		for i := 0; i < 20; i++ {
			tx, _ := db.Begin(ctx)
			tx.Clock = procClock(base+int64(i*10), int32(i+1))
			if _, err := tx.Read(ctx, "a"); err != nil {
				t.Fatalf("%s txn %d read: %v", db.Policy().Name(), i, err)
			}
			if err := tx.Write(ctx, "b", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(ctx); err != nil {
				t.Fatalf("%s txn %d: %v", db.Policy().Name(), i, err)
			}
		}
	}
}

// TestPrioCriticalSurvivesNormal checks Theorem 3: a critical
// transaction is never aborted by normal transactions, even when they
// read the keys it writes.
func TestPrioCriticalSurvivesNormal(t *testing.T) {
	var src clock.Logical
	var rec history.Recorder
	db := core.New(policy.NewPrio(clock.NewProcess(&src, 0)), core.Options{Recorder: &rec})
	ctx := context.Background()

	// A normal transaction reads x (leaving read locks up to its
	// timestamp) and stays active.
	n1, _ := db.Begin(ctx)
	if _, err := n1.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}

	// The critical transaction reads and writes x.
	crit, _ := db.Begin(ctx)
	crit.Priority = true
	if _, err := crit.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := crit.Write(ctx, "x", []byte("critical")); err != nil {
		t.Fatal(err)
	}
	if err := crit.Commit(ctx); err != nil {
		t.Fatalf("critical transaction aborted by normal activity (Theorem 3): %v", err)
	}

	// n1 can still try to commit; whether it succeeds is irrelevant to
	// the theorem.
	_ = n1.Commit(ctx)

	// More normal traffic after the critical commit must also not be
	// able to damage history.
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPrioNormalAbortedByCritical shows the converse direction is
// allowed: a normal transaction writing below the critical transaction's
// frozen reads aborts.
func TestPrioNormalAbortedByCritical(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewPrio(clock.NewProcess(&src, 0)), core.Options{})
	ctx := context.Background()

	// A normal reader at timestamp 10 pushes the critical commit point
	// above 10 (its read locks make timestamps <= 10 unavailable for
	// the critical write).
	n0, _ := db.Begin(ctx)
	n0.Clock = procClock(10, 1)
	if _, err := n0.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}

	crit, _ := db.Begin(ctx)
	crit.Priority = true
	if _, err := crit.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := crit.Write(ctx, "x", []byte("critical")); err != nil {
		t.Fatal(err)
	}
	if err := crit.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// A normal writer below the critical transaction's frozen read
	// interval must abort.
	n1, _ := db.Begin(ctx)
	n1.Clock = procClock(5, 2)
	if err := n1.Write(ctx, "x", []byte("normal")); err != nil {
		t.Fatal(err)
	}
	if err := n1.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("normal write below critical frozen reads must abort, got %v", err)
	}
}

// TestPessimisticSerializesConflictingWriters: with MVTL-Pessimistic two
// conflicting transactions execute one after the other (the second
// blocks until the first commits), and both commit.
func TestPessimisticSerializesConflictingWriters(t *testing.T) {
	db := core.New(policy.NewPessimistic(), core.Options{})
	ctx := context.Background()

	t1, _ := db.Begin(ctx)
	if err := t1.Write(ctx, "x", []byte("1")); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		t2, _ := db.Begin(ctx)
		if err := t2.Write(ctx, "x", []byte("2")); err != nil {
			done <- err
			return
		}
		done <- t2.Commit(ctx)
	}()

	// t2 blocks on t1's write lock; commit t1 to release it.
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("t2 must commit after t1 releases: %v", err)
	}

	t3, _ := db.Begin(ctx)
	v, err := t3.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "2" {
		t.Fatalf("final value %q, want 2", v)
	}
}

// TestTILBasicCommit exercises MVTIL end to end on a tiny conflict-free
// workload for both commit choices.
func TestTILBasicCommit(t *testing.T) {
	for _, choice := range []policy.CommitChoice{policy.CommitEarly, policy.CommitLate} {
		var src clock.Logical
		db := core.New(policy.NewTIL(clock.NewProcess(&src, 0), 100, choice, true), core.Options{})
		ctx := context.Background()
		tx, _ := db.Begin(ctx)
		if _, err := tx.Read(ctx, "a"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(ctx, "b", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatalf("%v: %v", choice, err)
		}
		tx2, _ := db.Begin(ctx)
		got, err := tx2.Read(ctx, "b")
		if err != nil || string(got) != "v" {
			t.Fatalf("%v: read %q %v", choice, got, err)
		}
	}
}
