package policy

import (
	"context"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// Prio is the prioritizer policy MVTL-Prio (§5.2, Alg. 6). Transactions
// marked critical (Txn.Priority) grab locks greedily across the whole
// timeline — like pessimistic concurrency control, but without blocking
// on other transactions' locks — while normal transactions behave like
// timestamp ordering. Critical transactions always own the tail of the
// timeline above every normal transaction's timestamp, so normal
// transactions can never abort them (Theorem 3); only other critical
// transactions can.
//
// Following §5.2 (which corrects Alg. 6 on this point), both kinds of
// transaction garbage collect on commit, so no finished transaction
// leaves unfrozen locks behind.
type Prio struct {
	clk *clock.Process
}

var _ core.Policy = (*Prio)(nil)

// NewPrio returns the prioritizer policy.
func NewPrio(clk *clock.Process) *Prio { return &Prio{clk: clk} }

// prioState is the per-transaction state (normal transactions only need
// the timestamp).
type prioState struct {
	ts  timestamp.Timestamp
	set bool
}

// Name implements core.Policy.
func (p *Prio) Name() string { return "mvtl-prio" }

// Begin implements core.Policy.
func (p *Prio) Begin(tx *core.Txn) { tx.PolicyState = &prioState{} }

func (p *Prio) state(tx *core.Txn) *prioState {
	st := tx.PolicyState.(*prioState)
	if !st.set {
		st.ts = txnClock(tx, p.clk).Now()
		st.set = true
	}
	return st
}

// WriteLocks implements core.Policy. Critical transactions write-lock
// every timestamp they can get right now, without waiting — in
// particular the whole unlocked tail of the timeline. Normal
// transactions lock nothing until commit.
func (p *Prio) WriteLocks(ctx context.Context, tx *core.Txn, k string) error {
	if !tx.Priority {
		return nil
	}
	res, err := tx.Key(k).Locks.AcquireWrite(ctx, tx.Owner(), allWritable(),
		lock.Options{Partial: true})
	if err != nil {
		return fmt.Errorf("priority write-lock %q: %w", k, err)
	}
	if res.Got.IsEmpty() {
		return fmt.Errorf("priority write-lock %q: nothing lockable", k)
	}
	return nil
}

// Read implements core.Policy. Critical transactions read the latest
// version and lock upward to +∞ (waiting only on unfrozen write locks,
// which are held just for the brief commit window of other
// transactions); normal transactions read at their timestamp like
// MVTL-TO.
func (p *Prio) Read(ctx context.Context, tx *core.Txn, k string) (version.Version, error) {
	if tx.Priority {
		v, _, err := readUpTo(ctx, tx, tx.Key(k), timestamp.Infinity, true)
		return v, err
	}
	st := p.state(tx)
	v, _, err := readUpTo(ctx, tx, tx.Key(k), st.ts, true)
	return v, err
}

// CommitLocks implements core.Policy. Normal transactions write-lock
// their timestamp without waiting, as in MVTL-TO (Alg. 6 lines 23-29);
// critical transactions already hold their write locks.
func (p *Prio) CommitLocks(ctx context.Context, tx *core.Txn) error {
	if tx.Priority {
		return nil
	}
	st := p.state(tx)
	owner := tx.Owner()
	for _, k := range tx.WriteKeys() {
		if _, err := tx.Key(k).Locks.AcquireWrite(ctx, owner, pointSet(st.ts), lock.Options{}); err != nil {
			for _, prev := range tx.WriteKeys() {
				tx.Key(prev).Locks.ReleaseWrites(owner)
			}
			return fmt.Errorf("write-lock %q at %v: %w", k, st.ts, err)
		}
	}
	return nil
}

// CommitTS implements core.Policy: critical transactions commit at the
// start of the commonly locked tail (just above every conflicting normal
// timestamp); normal ones at their timestamp (Alg. 6 lines 30-34).
func (p *Prio) CommitTS(tx *core.Txn, candidates timestamp.Set) (timestamp.Timestamp, bool) {
	if tx.Priority {
		return tailMin(candidates)
	}
	return p.state(tx).ts, true
}

// CommitGC implements core.Policy: both kinds garbage collect (§5.2).
func (p *Prio) CommitGC(*core.Txn) bool { return true }
