package policy_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/policy"
)

// stressConfig shapes one randomized concurrency run.
type stressConfig struct {
	goroutines int
	txnsPer    int
	opsPerTxn  int
	keys       int
	writeFrac  float64
	txnTimeout time.Duration
}

// runStress hammers the database with random transactions and returns
// (commits, aborts). The committed history lands in rec.
func runStress(t *testing.T, db *core.DB, cfg stressConfig) (int, int) {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits, aborts := 0, 0
	for g := 0; g < cfg.goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			localCommits, localAborts := 0, 0
			for i := 0; i < cfg.txnsPer; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), cfg.txnTimeout)
				tx, err := db.Begin(ctx)
				if err != nil {
					cancel()
					localAborts++
					continue
				}
				ok := true
				for op := 0; op < cfg.opsPerTxn; op++ {
					k := fmt.Sprintf("key-%d", rng.Intn(cfg.keys))
					if rng.Float64() < cfg.writeFrac {
						err = tx.Write(ctx, k, []byte(fmt.Sprintf("%d-%d", seed, i)))
					} else {
						_, err = tx.Read(ctx, k)
					}
					if err != nil {
						ok = false
						break
					}
				}
				if ok {
					err = tx.Commit(ctx)
					ok = err == nil
				} else {
					_ = tx.Abort(ctx)
				}
				cancel()
				if ok {
					localCommits++
				} else {
					localAborts++
				}
			}
			mu.Lock()
			commits += localCommits
			aborts += localAborts
			mu.Unlock()
		}(int64(g) + 1)
	}
	wg.Wait()
	return commits, aborts
}

// TestStressSerializability runs the randomized workload under every
// policy and asserts the committed history is multiversion serializable
// (Theorem 1: safety holds for every policy).
func TestStressSerializability(t *testing.T) {
	mkPolicies := func(clk *clock.Process) map[string]core.Policy {
		return map[string]core.Policy{
			"to":          policy.NewTO(clk),
			"ghostbuster": policy.NewGhostbuster(clk),
			"pref":        policy.NewPref(clk, policy.OffsetAlternatives(-3, -7)),
			"prio":        policy.NewPrio(clk),
			"eps-clock":   policy.NewEpsilonClock(clk, 10),
			"pessimistic": policy.NewPessimistic(),
			"til-early":   policy.NewTIL(clk, 50, policy.CommitEarly, true),
			"til-late":    policy.NewTIL(clk, 50, policy.CommitLate, true),
			"til-nogc":    policy.NewTIL(clk, 50, policy.CommitEarly, false),
		}
	}
	cfg := stressConfig{
		goroutines: 8,
		txnsPer:    60,
		opsPerTxn:  6,
		keys:       12,
		writeFrac:  0.4,
		txnTimeout: 250 * time.Millisecond,
	}
	names := []string{"to", "ghostbuster", "pref", "prio", "eps-clock", "pessimistic", "til-early", "til-late", "til-nogc"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var src clock.Logical
			clk := clock.NewProcess(&src, 1)
			var rec history.Recorder
			db := core.New(mkPolicies(clk)[name], core.Options{Recorder: &rec})
			commits, aborts := runStress(t, db, cfg)
			if commits == 0 {
				t.Fatalf("no transaction committed (aborts=%d)", aborts)
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("serializability violated: %v", err)
			}
			t.Logf("%s: %d commits, %d aborts, %d keys, %d lock entries",
				name, commits, aborts, db.StateStats().Keys, db.StateStats().LockEntries)
		})
	}
}

// TestStressPriorityMix runs the prioritizer with a mix of critical and
// normal transactions and verifies both serializability and Theorem 3:
// no critical transaction is ever aborted while only normal transactions
// run concurrently with it.
func TestStressPriorityMix(t *testing.T) {
	var src clock.Logical
	clk := clock.NewProcess(&src, 1)
	var rec history.Recorder
	db := core.New(policy.NewPrio(clk), core.Options{Recorder: &rec})

	var wg sync.WaitGroup
	// Normal churn.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 80; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				tx, _ := db.Begin(ctx)
				for op := 0; op < 4; op++ {
					k := fmt.Sprintf("key-%d", rng.Intn(8))
					var err error
					if rng.Intn(2) == 0 {
						_, err = tx.Read(ctx, k)
					} else {
						err = tx.Write(ctx, k, []byte("n"))
					}
					if err != nil {
						break
					}
				}
				_ = tx.Commit(ctx)
				cancel()
			}
		}(int64(g) + 100)
	}
	// One goroutine issuing critical transactions sequentially: none may
	// abort (only normal traffic runs concurrently).
	criticalErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			tx, _ := db.Begin(ctx)
			tx.Priority = true
			var err error
			k := fmt.Sprintf("key-%d", rng.Intn(8))
			if _, err = tx.Read(ctx, k); err == nil {
				if err = tx.Write(ctx, k, []byte("critical")); err == nil {
					err = tx.Commit(ctx)
				}
			}
			cancel()
			if err != nil {
				select {
				case criticalErr <- fmt.Errorf("critical txn %d: %w", i, err):
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-criticalErr:
		t.Fatalf("Theorem 3 violated: %v", err)
	default:
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStressHotKey focuses all transactions on one key to maximize
// conflicts; serializability must survive under every policy that can
// make progress there.
func TestStressHotKey(t *testing.T) {
	for _, name := range []string{"to", "ghostbuster", "til-early", "eps-clock"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var src clock.Logical
			clk := clock.NewProcess(&src, 1)
			var rec history.Recorder
			var pol core.Policy
			switch name {
			case "to":
				pol = policy.NewTO(clk)
			case "ghostbuster":
				pol = policy.NewGhostbuster(clk)
			case "til-early":
				pol = policy.NewTIL(clk, 30, policy.CommitEarly, true)
			case "eps-clock":
				pol = policy.NewEpsilonClock(clk, 5)
			}
			db := core.New(pol, core.Options{Recorder: &rec})
			commits, _ := runStress(t, db, stressConfig{
				goroutines: 8,
				txnsPer:    40,
				opsPerTxn:  2,
				keys:       1,
				writeFrac:  0.5,
				txnTimeout: 200 * time.Millisecond,
			})
			if commits == 0 {
				t.Fatal("hot key starved every transaction")
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("serializability violated: %v", err)
			}
		})
	}
}
