package policy_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/policy"
)

// TestSerialWorkloadsNeverAbort is a liveness property: with a single
// well-behaved clock, a fully serial execution (one transaction at a
// time) never aborts under any policy. Serial aborts exist only with
// skewed clocks (§5.3), which this test does not use.
func TestSerialWorkloadsNeverAbort(t *testing.T) {
	mk := map[string]func() *core.DB{
		"to": func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewTO(clock.NewProcess(&src, 1)), core.Options{})
		},
		"ghostbuster": func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewGhostbuster(clock.NewProcess(&src, 1)), core.Options{})
		},
		"pref": func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewPref(clock.NewProcess(&src, 1), policy.OffsetAlternatives(-2)), core.Options{})
		},
		"eps-clock": func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewEpsilonClock(clock.NewProcess(&src, 1), 3), core.Options{})
		},
		"pessimistic": func() *core.DB {
			return core.New(policy.NewPessimistic(), core.Options{})
		},
		"til-early": func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewTIL(clock.NewProcess(&src, 1), 100, policy.CommitEarly, true), core.Options{})
		},
		"til-late": func() *core.DB {
			var src clock.Logical
			return core.New(policy.NewTIL(clock.NewProcess(&src, 1), 100, policy.CommitLate, true), core.Options{})
		},
	}
	ctx := context.Background()
	for name, make := range mk {
		name, make := name, make
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for round := 0; round < 20; round++ {
				rng := rand.New(rand.NewSource(int64(round)))
				db := make()
				for txn := 0; txn < 30; txn++ {
					tx, err := db.Begin(ctx)
					if err != nil {
						t.Fatal(err)
					}
					nops := 1 + rng.Intn(5)
					for op := 0; op < nops; op++ {
						k := fmt.Sprintf("k%d", rng.Intn(5))
						if rng.Intn(2) == 0 {
							if _, err := tx.Read(ctx, k); err != nil {
								t.Fatalf("round %d txn %d read: %v", round, txn, err)
							}
						} else {
							if err := tx.Write(ctx, k, []byte{byte(op)}); err != nil {
								t.Fatalf("round %d txn %d write: %v", round, txn, err)
							}
						}
					}
					if err := tx.Commit(ctx); err != nil {
						t.Fatalf("%s: serial txn %d in round %d aborted: %v", name, txn, round, err)
					}
				}
			}
		})
	}
}

// TestSerialReadsSeeLatestWrite is a semantic property: in a serial
// execution, every read observes the most recent committed write of that
// key, for every policy.
func TestSerialReadsSeeLatestWrite(t *testing.T) {
	policies := []string{"to", "ghostbuster", "pref", "eps-clock", "pessimistic", "til-early", "til-late"}
	ctx := context.Background()
	for _, name := range policies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var src clock.Logical
			clk := clock.NewProcess(&src, 1)
			var db *core.DB
			switch name {
			case "to":
				db = core.New(policy.NewTO(clk), core.Options{})
			case "ghostbuster":
				db = core.New(policy.NewGhostbuster(clk), core.Options{})
			case "pref":
				db = core.New(policy.NewPref(clk, policy.OffsetAlternatives(-2)), core.Options{})
			case "eps-clock":
				db = core.New(policy.NewEpsilonClock(clk, 3), core.Options{})
			case "pessimistic":
				db = core.New(policy.NewPessimistic(), core.Options{})
			case "til-early":
				db = core.New(policy.NewTIL(clk, 100, policy.CommitEarly, true), core.Options{})
			case "til-late":
				db = core.New(policy.NewTIL(clk, 100, policy.CommitLate, true), core.Options{})
			}
			model := map[string][]byte{}
			rng := rand.New(rand.NewSource(7))
			for txn := 0; txn < 60; txn++ {
				tx, _ := db.Begin(ctx)
				k := fmt.Sprintf("k%d", rng.Intn(4))
				if rng.Intn(2) == 0 {
					v := []byte(fmt.Sprintf("v%d", txn))
					if err := tx.Write(ctx, k, v); err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(ctx); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				} else {
					got, err := tx.Read(ctx, k)
					if err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(ctx); err != nil {
						t.Fatal(err)
					}
					if string(got) != string(model[k]) {
						t.Fatalf("%s: read %q = %q, model says %q", name, k, got, model[k])
					}
				}
			}
		})
	}
}

// TestGCStateAfterCommit inspects the lock table after a Ghostbuster
// commit: read locks up to the commit timestamp are frozen, everything
// else is gone.
func TestGCStateAfterCommit(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewGhostbuster(clock.NewProcess(&src, 1)), core.Options{})
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	if _, err := tx.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ctx, "y", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	st := db.StateStats()
	if st.LockEntries != st.FrozenLockEntries {
		t.Fatalf("unfrozen residue after GC'd commit: %+v", st)
	}
	if st.FrozenLockEntries == 0 {
		t.Fatal("commit must leave frozen locks (read interval + write point)")
	}
	// A record of the committed history survives in the version store.
	if st.Versions != 3 { // ⊥x, ⊥y, y@committs
		t.Fatalf("Versions = %d", st.Versions)
	}
}

// TestAbortLeavesNoUnfrozenLocksWhenGC checks the abort path for GC'ing
// policies: nothing unfrozen may remain.
func TestAbortLeavesNoUnfrozenLocksWhenGC(t *testing.T) {
	var src clock.Logical
	db := core.New(policy.NewTIL(clock.NewProcess(&src, 1), 100, policy.CommitEarly, true), core.Options{})
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	if _, err := tx.Read(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ctx, "b", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	st := db.StateStats()
	if st.LockEntries != 0 {
		t.Fatalf("aborted GC'd txn left %d lock entries", st.LockEntries)
	}
}

// TestHistoryAcrossPolicies mixes different policy databases — they
// cannot share state, but the recorder machinery must isolate histories
// correctly per database.
func TestHistoryAcrossPolicies(t *testing.T) {
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		var rec history.Recorder
		var src clock.Logical
		db := core.New(policy.NewGhostbuster(clock.NewProcess(&src, 1)), core.Options{Recorder: &rec})
		tx, _ := db.Begin(ctx)
		_ = tx.Write(ctx, "k", []byte("v"))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		if rec.Len() != 1 {
			t.Fatalf("iteration %d: recorded %d", i, rec.Len())
		}
		if err := rec.Check(); err != nil {
			t.Fatal(err)
		}
	}
}
