package policy

import (
	"context"
	"errors"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// CommitChoice selects which end of the final interval MVTIL commits at.
type CommitChoice uint8

// Commit choices evaluated in §8: MVTIL-early picks the smallest locked
// timestamp, MVTIL-late the largest.
const (
	CommitEarly CommitChoice = iota + 1
	CommitLate
)

// String renders the choice.
func (c CommitChoice) String() string {
	switch c {
	case CommitEarly:
		return "early"
	case CommitLate:
		return "late"
	default:
		return fmt.Sprintf("choice(%d)", uint8(c))
	}
}

// TIL is MVTIL (§8), the interval-locking variant of the ε-clock
// algorithm used in the paper's evaluation: a transaction associates
// itself with the interval I = [t, t+Δ] from its local clock — no clock
// synchronization assumed — and tries to lock I on every key it
// touches, never waiting: when only a subinterval can be locked, I
// shrinks to it, reducing the locking burden on subsequent keys. The
// transaction commits at the smallest (early) or largest (late)
// timestamp of the commonly locked set.
type TIL struct {
	clk    *clock.Process
	delta  int64
	choice CommitChoice
	gc     bool
}

var _ core.Policy = (*TIL)(nil)

// NewTIL returns an MVTIL policy with interval width delta (in clock
// ticks). gcOnCommit enables per-commit lock garbage collection; the
// paper's MVTIL-GC additionally purges old state periodically, which is
// DB.PurgeBelow's job.
func NewTIL(clk *clock.Process, delta int64, choice CommitChoice, gcOnCommit bool) *TIL {
	return &TIL{clk: clk, delta: delta, choice: choice, gc: gcOnCommit}
}

// tilState is the per-transaction state: the shrinking interval I.
type tilState struct {
	i   timestamp.Set
	set bool
}

// Name implements core.Policy.
func (p *TIL) Name() string { return "mvtil-" + p.choice.String() }

// Begin implements core.Policy.
func (p *TIL) Begin(tx *core.Txn) { tx.PolicyState = &tilState{} }

func (p *TIL) state(tx *core.Txn) *tilState {
	st := tx.PolicyState.(*tilState)
	if !st.set {
		now := txnClock(tx, p.clk).Now()
		st.i = timestamp.NewSet(timeInterval(now.Time, now.Time+p.delta))
		st.set = true
	}
	return st
}

// WriteLocks implements core.Policy: write-lock as much of I as
// possible without waiting, then shrink I to the acquired subset.
func (p *TIL) WriteLocks(ctx context.Context, tx *core.Txn, k string) error {
	st := p.state(tx)
	if st.i.IsEmpty() {
		return errors.New("mvtil: interval exhausted")
	}
	res, err := tx.Key(k).Locks.AcquireWrite(ctx, tx.Owner(), st.i, lock.Options{Partial: true})
	if err != nil {
		return fmt.Errorf("write-lock %q: %w", k, err)
	}
	if max, ok := res.Denied.Max(); ok && max.After(tx.RestartHint) {
		tx.RestartHint = max
	}
	st.i = res.Got
	if st.i.IsEmpty() {
		return errors.New("mvtil: write locks exhausted the interval")
	}
	return nil
}

// Read implements core.Policy: read the latest version below the top of
// I and read-lock the contiguous prefix available without waiting, then
// shrink I accordingly.
func (p *TIL) Read(ctx context.Context, tx *core.Txn, k string) (version.Version, error) {
	st := p.state(tx)
	if st.i.IsEmpty() {
		return version.Version{}, errors.New("mvtil: interval exhausted")
	}
	m, _ := st.i.Max()
	v, got, err := readUpTo(ctx, tx, tx.Key(k), m, false)
	if err != nil {
		return version.Version{}, err
	}
	if got.IsEmpty() {
		// An unfrozen conflict sits right above the version: the read
		// cannot be protected anywhere inside I.
		return version.Version{}, errors.New("mvtil: read locks unavailable")
	}
	st.i = st.i.IntersectInterval(timestamp.Span(v.TS.Next(), got.Hi))
	if st.i.IsEmpty() {
		return version.Version{}, errors.New("mvtil: read shrank the interval to nothing")
	}
	return v, nil
}

// CommitLocks implements core.Policy: all locks were taken during
// execution.
func (p *TIL) CommitLocks(context.Context, *core.Txn) error { return nil }

// CommitTS implements core.Policy: the smallest or largest commonly
// locked timestamp, per the early/late variant.
func (p *TIL) CommitTS(_ *core.Txn, candidates timestamp.Set) (timestamp.Timestamp, bool) {
	if p.choice == CommitLate {
		return candidates.Max()
	}
	return candidates.Min()
}

// CommitGC implements core.Policy.
func (p *TIL) CommitGC(*core.Txn) bool { return p.gc }
