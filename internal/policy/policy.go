// Package policy provides the specialized MVTL algorithms of §5 of the
// paper as policies for the generic engine in internal/core:
//
//   - TO          — MVTL-TO, behaviourally equivalent to MVTO+ (Alg. 8)
//   - Ghostbuster — MVTL-TO plus garbage collection, immune to ghost
//     aborts (Alg. 10)
//   - Pref        — the preferential algorithm with alternative
//     timestamps (Alg. 3/5)
//   - Prio        — the prioritizer: critical transactions are never
//     aborted by normal ones (Alg. 6)
//   - EpsilonClock — immune to serial aborts under ε-synchronized
//     clocks (Alg. 7)
//   - Pessimistic — behaviourally equivalent to pessimistic two-phase
//     locking (Alg. 9)
//   - TIL         — the interval-locking variant evaluated in §8
//     (MVTIL-early / MVTIL-late)
//
// Every policy is a safe specialization of the generic algorithm
// (Theorem 1); they differ in liveness: which workloads abort, block, or
// deadlock.
package policy

import (
	"context"
	"math"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// txnClock returns the timestamp source for a transaction: its override
// if set, the policy default otherwise.
func txnClock(tx *core.Txn, def *clock.Process) *clock.Process {
	if tx.Clock != nil {
		return tx.Clock
	}
	return def
}

// timeInterval returns the interval covering all timestamps whose time
// component lies in [lo, hi], across every process id, clamped to stay
// strictly above Zero (the initial-version timestamp is never lockable
// for writing).
func timeInterval(lo, hi int64) timestamp.Interval {
	l := timestamp.New(lo, math.MinInt32)
	if !l.After(timestamp.Zero) {
		l = timestamp.Zero.Next()
	}
	return timestamp.Span(l, timestamp.New(hi, math.MaxInt32))
}

// readUpTo implements the MVTO-style read loop shared by most policies
// (Alg. 8 lines 4-11 and its variants): pick the latest committed
// version below upper, read-lock the interval from just after that
// version up to upper, and retry from scratch whenever a frozen write
// lock reveals that a newer version committed in between. When wait is
// set the loop blocks on unfrozen write locks (bounded by ctx);
// otherwise it takes the contiguous prefix it can get.
//
// It returns the version read and the read-locked interval (which may be
// a strict prefix of [version.TS+1, upper] in no-wait mode, and may be
// empty).
func readUpTo(ctx context.Context, tx *core.Txn, ks *core.KeyState, upper timestamp.Timestamp, wait bool) (version.Version, timestamp.Interval, error) {
	owner := tx.Owner()
	for {
		if err := ctx.Err(); err != nil {
			return version.Version{}, timestamp.Empty, err
		}
		v, err := ks.Versions.LatestBefore(upper)
		if err != nil {
			return version.Version{}, timestamp.Empty, err
		}
		req := timestamp.Span(v.TS.Next(), upper)
		if req.IsEmpty() {
			return v, timestamp.Empty, nil
		}
		res, err := ks.Locks.AcquireRead(ctx, owner, req, lock.Options{Wait: wait, Partial: true})
		if err != nil {
			return version.Version{}, timestamp.Empty, err
		}
		if res.FrozenAt == nil {
			return v, res.Got, nil
		}
		// A frozen write lock means a version committed inside
		// (v.TS, upper] (values are installed before freezing).
		if res.FrozenAt.Lo.After(tx.RestartHint) {
			tx.RestartHint = res.FrozenAt.Lo
		}
		if !res.FrozenAt.Lo.Before(upper) {
			// The frozen point sits exactly at the top of the request:
			// the newer version is not readable below upper, so
			// re-picking cannot make progress. Settle for the prefix —
			// the value read stays correct for every serialization
			// point before the frozen version.
			return v, res.Got, nil
		}
		if !wait && !res.Got.IsEmpty() {
			// In no-wait mode a prefix below the frozen point is a
			// perfectly good outcome.
			return v, res.Got, nil
		}
		// Release what we grabbed and re-pick the version to read (the
		// repeat loop of Alg. 8).
		if !res.Got.IsEmpty() {
			ks.Locks.ReleaseReadIn(owner, res.Got)
		}
	}
}

// pointSet returns the one-timestamp set {t}.
func pointSet(t timestamp.Timestamp) timestamp.Set {
	return timestamp.NewSet(timestamp.Point(t))
}

// allWritable is the set of every timestamp a write may lock: the whole
// timeline except Zero, which permanently holds the initial version ⊥.
func allWritable() timestamp.Set {
	return timestamp.NewSet(timestamp.Span(timestamp.Zero.Next(), timestamp.Infinity))
}

// tailMin returns the smallest timestamp of the last (highest) interval
// of the candidate set — the start of the commonly locked timeline tail.
// Pessimistic-style policies commit there: just above every version
// committed and every timestamp read on the keys they touched, which
// reproduces 2PL's real-time serialization order.
func tailMin(candidates timestamp.Set) (timestamp.Timestamp, bool) {
	n := candidates.NumIntervals()
	if n == 0 {
		return timestamp.Timestamp{}, false
	}
	return candidates.At(n - 1).Lo, true
}
