package policy

import (
	"context"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// TO is the MVTL-TO policy (Alg. 8), which specializes MVTL to behave
// exactly like MVTO+ (Theorem 5): each transaction picks one timestamp
// at start, reads lock the interval from the version read up to that
// timestamp, writes lock nothing until commit, and commit write-locks
// exactly the transaction's timestamp without waiting.
//
// Like MVTO+, MVTL-TO does not garbage collect: read locks of finished
// transactions persist, playing the role of per-version read timestamps.
// This deliberately reproduces MVTO+'s ghost aborts (§5.5); use
// Ghostbuster to avoid them.
type TO struct {
	clk *clock.Process
	// gcOnCommit distinguishes Ghostbuster (true) from plain TO.
	gcOnCommit bool
	// waitCommitLocks makes commit-time write locks wait on unfrozen
	// conflicts (Ghostbuster, Alg. 10 line 15) instead of failing
	// immediately (TO, Alg. 8 line 14).
	waitCommitLocks bool
	name            string
}

var _ core.Policy = (*TO)(nil)

// NewTO returns the MVTL-TO policy drawing timestamps from clk.
func NewTO(clk *clock.Process) *TO {
	return &TO{clk: clk, name: "mvtl-to"}
}

// NewGhostbuster returns the MVTL-Ghostbuster policy (Alg. 10): MVTL-TO
// plus garbage collection on commit and abort, which makes it immune to
// ghost aborts (Theorem 7).
func NewGhostbuster(clk *clock.Process) *TO {
	return &TO{clk: clk, gcOnCommit: true, waitCommitLocks: true, name: "mvtl-ghostbuster"}
}

// toState is the per-transaction state: the serialization timestamp.
type toState struct {
	ts timestamp.Timestamp
	// set reports whether ts was initialized (lazily, at first use).
	set bool
}

// Name implements core.Policy.
func (p *TO) Name() string { return p.name }

// Begin implements core.Policy. Initialization is lazy so that tests can
// install per-transaction clocks after Begin.
func (p *TO) Begin(tx *core.Txn) {
	tx.PolicyState = &toState{}
}

func (p *TO) state(tx *core.Txn) *toState {
	st := tx.PolicyState.(*toState)
	if !st.set {
		st.ts = txnClock(tx, p.clk).Now()
		st.set = true
	}
	return st
}

// WriteLocks implements core.Policy: writes lock nothing until commit.
func (p *TO) WriteLocks(context.Context, *core.Txn, string) error { return nil }

// Read implements core.Policy: read the latest version before the
// transaction timestamp and read-lock up to it, waiting on unfrozen
// write locks.
func (p *TO) Read(ctx context.Context, tx *core.Txn, k string) (version.Version, error) {
	st := p.state(tx)
	v, _, err := readUpTo(ctx, tx, tx.Key(k), st.ts, true)
	return v, err
}

// CommitLocks implements core.Policy: write-lock exactly the transaction
// timestamp on every written key.
func (p *TO) CommitLocks(ctx context.Context, tx *core.Txn) error {
	st := p.state(tx)
	owner := tx.Owner()
	for _, k := range tx.WriteKeys() {
		ks := tx.Key(k)
		_, err := ks.Locks.AcquireWrite(ctx, owner, pointSet(st.ts), lock.Options{Wait: p.waitCommitLocks})
		if err != nil {
			// Release write locks acquired for earlier keys (Alg. 8
			// line 16); the engine aborts the transaction.
			for _, prev := range tx.WriteKeys() {
				tx.Key(prev).Locks.ReleaseWrites(owner)
			}
			return fmt.Errorf("write-lock %q at %v: %w", k, st.ts, err)
		}
	}
	return nil
}

// CommitTS implements core.Policy: commit at the transaction timestamp.
func (p *TO) CommitTS(tx *core.Txn, _ timestamp.Set) (timestamp.Timestamp, bool) {
	st := p.state(tx)
	return st.ts, true
}

// CommitGC implements core.Policy.
func (p *TO) CommitGC(*core.Txn) bool { return p.gcOnCommit }

// Timestamp exposes the transaction's serialization timestamp, for tests.
func (p *TO) Timestamp(tx *core.Txn) timestamp.Timestamp { return p.state(tx).ts }
