package policy

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// Alternatives produces the alternative timestamps A(t) for a
// preferential timestamp t (§5.1). The returned timestamps must be
// distinct from t and unique per transaction (reuse t's process id to
// guarantee that).
type Alternatives func(t timestamp.Timestamp) []timestamp.Timestamp

// OffsetAlternatives returns an Alternatives function producing
// t+offset_i for each given time offset; for Theorem 2's guarantees use
// negative offsets only.
func OffsetAlternatives(offsets ...int64) Alternatives {
	return func(t timestamp.Timestamp) []timestamp.Timestamp {
		out := make([]timestamp.Timestamp, 0, len(offsets))
		for _, d := range offsets {
			alt := timestamp.New(t.Time+d, t.Proc)
			if alt != t && alt.After(timestamp.Zero) {
				out = append(out, alt)
			}
		}
		return out
	}
}

// Pref is the preferential algorithm MVTL-Pref (Alg. 3/5). Each
// transaction has a preferential timestamp from the clock and a set of
// alternatives A(t); reads lock enough of the timeline to keep as many
// alternatives viable as possible, and commit tries the preferential
// timestamp first, then the alternatives. With alternatives below the
// preferential timestamp, MVTL-Pref aborts strictly fewer workloads than
// MVTO+ (Theorem 2).
type Pref struct {
	clk  *clock.Process
	alts Alternatives
}

var _ core.Policy = (*Pref)(nil)

// NewPref returns the preferential policy with alternatives alts.
func NewPref(clk *clock.Process, alts Alternatives) *Pref {
	return &Pref{clk: clk, alts: alts}
}

// prefState is the per-transaction state.
type prefState struct {
	pref timestamp.Timestamp
	// poss is PossTS: the timestamps still viable for commit.
	poss   timestamp.Set
	chosen timestamp.Timestamp
	found  bool
	set    bool
}

// Name implements core.Policy.
func (p *Pref) Name() string { return "mvtl-pref" }

// Begin implements core.Policy.
func (p *Pref) Begin(tx *core.Txn) { tx.PolicyState = &prefState{} }

func (p *Pref) state(tx *core.Txn) *prefState {
	st := tx.PolicyState.(*prefState)
	if !st.set {
		st.pref = txnClock(tx, p.clk).Now()
		st.poss = pointSet(st.pref)
		for _, a := range p.alts(st.pref) {
			st.poss.AddInPlace(timestamp.Point(a))
		}
		st.set = true
	}
	return st
}

// WriteLocks implements core.Policy: the write set is locked only at
// commit (Alg. 3 line 4).
func (p *Pref) WriteLocks(context.Context, *core.Txn, string) error { return nil }

// Read implements core.Policy (Alg. 3 lines 5-14): read the version
// below the preferential timestamp, read-lock toward the highest still
// viable timestamp, and narrow PossTS to the locked range.
func (p *Pref) Read(ctx context.Context, tx *core.Txn, k string) (version.Version, error) {
	st := p.state(tx)
	ks := tx.Key(k)
	owner := tx.Owner()
	for {
		if err := ctx.Err(); err != nil {
			return version.Version{}, err
		}
		if st.poss.IsEmpty() {
			return version.Version{}, errors.New("mvtl-pref: no viable timestamps left")
		}
		v, err := ks.Versions.LatestBefore(st.pref)
		if err != nil {
			return version.Version{}, err
		}
		upper, _ := st.poss.Max()
		req := timestamp.Span(v.TS.Next(), upper)
		res, err := ks.Locks.AcquireRead(ctx, owner, req, lock.Options{Wait: true, Partial: true})
		if err != nil {
			return version.Version{}, err
		}
		if res.FrozenAt != nil && res.FrozenAt.Lo.Before(st.pref) {
			// A newer version committed strictly below the preferential
			// timestamp: re-pick the version to read (repeat loop). A
			// frozen point at or above pref cannot change what we read
			// — LatestBefore(pref) is strict — so for those we keep the
			// prefix and let the narrowing below drop the dead
			// candidates (otherwise the loop would never progress).
			if !res.Got.IsEmpty() {
				ks.Locks.ReleaseReadIn(owner, res.Got)
			}
			continue
		}
		// Narrow PossTS to [tr, tmax] (Alg. 3 line 13); tmax is the top
		// of the locked range (or tr itself when nothing was locked).
		hi := v.TS
		if !res.Got.IsEmpty() {
			hi = res.Got.Hi
		}
		st.poss = st.poss.IntersectInterval(timestamp.Span(v.TS, hi))
		return v, nil
	}
}

// CommitLocks implements core.Policy (Alg. 3 lines 15-26): try to
// write-lock the whole write set at the preferential timestamp, then at
// each alternative, without waiting.
func (p *Pref) CommitLocks(ctx context.Context, tx *core.Txn) error {
	st := p.state(tx)
	if len(tx.WriteKeys()) == 0 {
		// Read-only: any remaining possible timestamp works; prefer the
		// preferential one.
		if st.poss.Contains(st.pref) {
			st.chosen, st.found = st.pref, true
		} else if max, ok := st.poss.Max(); ok {
			st.chosen, st.found = max, true
		} else {
			return errors.New("mvtl-pref: no viable timestamps left")
		}
		return nil
	}
	owner := tx.Owner()
	for _, t := range p.commitOrder(st) {
		acquired := true
		for _, k := range tx.WriteKeys() {
			ks := tx.Key(k)
			if _, err := ks.Locks.AcquireWrite(ctx, owner, pointSet(t), lock.Options{}); err != nil {
				acquired = false
				break
			}
		}
		if acquired {
			st.chosen, st.found = t, true
			return nil
		}
		// This timestamp will not work: drop the write locks acquired
		// for it and try the next (Alg. 3 line 22).
		for _, k := range tx.WriteKeys() {
			tx.Key(k).Locks.ReleaseWrites(owner)
		}
	}
	return fmt.Errorf("mvtl-pref: no timestamp in %v is write-lockable", st.poss)
}

// commitOrder lists the candidate commit timestamps: the preferential
// timestamp first, then the remaining possibilities from highest to
// lowest.
func (p *Pref) commitOrder(st *prefState) []timestamp.Timestamp {
	var out []timestamp.Timestamp
	if st.poss.Contains(st.pref) {
		out = append(out, st.pref)
	}
	var rest []timestamp.Timestamp
	for i := 0; i < st.poss.NumIntervals(); i++ {
		iv := st.poss.At(i)
		// PossTS is a set of discrete points by construction; walk it.
		for t := iv.Lo; t.AtOrBefore(iv.Hi); t = t.Next() {
			if t != st.pref {
				rest = append(rest, t)
			}
			if t == iv.Hi {
				break
			}
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[j].Before(rest[i]) })
	return append(out, rest...)
}

// CommitTS implements core.Policy.
func (p *Pref) CommitTS(tx *core.Txn, _ timestamp.Set) (timestamp.Timestamp, bool) {
	st := p.state(tx)
	return st.chosen, st.found
}

// CommitGC implements core.Policy (Alg. 3 line 28).
func (p *Pref) CommitGC(*core.Txn) bool { return false }

// PreferredTimestamp exposes the preferential timestamp, for tests.
func (p *Pref) PreferredTimestamp(tx *core.Txn) timestamp.Timestamp { return p.state(tx).pref }
