package policy

import (
	"context"
	"errors"
	"fmt"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/lock"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
	"github.com/lpd-epfl/mvtl/internal/version"
)

// EpsilonClock is the MVTL-ε-clock policy (Alg. 7). Each transaction
// reads its local clock t and tries to lock the whole interval
// [t−ε, t+ε] on every access; it commits at the smallest commonly locked
// timestamp and garbage collects before finishing. With ε-synchronized
// clocks this policy never aborts in serial executions (Theorem 4),
// unlike timestamp ordering, which suffers serial aborts under clock
// skew (§5.3).
type EpsilonClock struct {
	clk *clock.Process
	eps int64
}

var _ core.Policy = (*EpsilonClock)(nil)

// NewEpsilonClock returns the ε-clock policy; eps is the clock
// synchronization bound, in clock ticks.
func NewEpsilonClock(clk *clock.Process, eps int64) *EpsilonClock {
	return &EpsilonClock{clk: clk, eps: eps}
}

// epsState is the per-transaction state: the shrinking set of
// timestamps the transaction may still commit at.
type epsState struct {
	ts  timestamp.Set
	set bool
}

// Name implements core.Policy.
func (p *EpsilonClock) Name() string { return "mvtl-eps-clock" }

// Begin implements core.Policy.
func (p *EpsilonClock) Begin(tx *core.Txn) { tx.PolicyState = &epsState{} }

func (p *EpsilonClock) state(tx *core.Txn) *epsState {
	st := tx.PolicyState.(*epsState)
	if !st.set {
		now := txnClock(tx, p.clk).Now()
		lo := now.Time - p.eps
		if lo < 0 {
			lo = 0
		}
		st.ts = timestamp.NewSet(timeInterval(lo, now.Time+p.eps))
		st.set = true
	}
	return st
}

// WriteLocks implements core.Policy (Alg. 7 lines 4-6): write-lock as
// much of tx.TS as possible, waiting on unfrozen conflicts, and shrink
// tx.TS to what was acquired.
func (p *EpsilonClock) WriteLocks(ctx context.Context, tx *core.Txn, k string) error {
	st := p.state(tx)
	if st.ts.IsEmpty() {
		return errors.New("mvtl-eps-clock: no lockable timestamps left")
	}
	res, err := tx.Key(k).Locks.AcquireWrite(ctx, tx.Owner(), st.ts, lock.Options{Wait: true, Partial: true})
	if err != nil {
		return fmt.Errorf("write-lock %q: %w", k, err)
	}
	st.ts = res.Got
	if st.ts.IsEmpty() {
		return errors.New("mvtl-eps-clock: write locks exhausted the timestamp interval")
	}
	return nil
}

// Read implements core.Policy (Alg. 7 lines 7-17).
func (p *EpsilonClock) Read(ctx context.Context, tx *core.Txn, k string) (version.Version, error) {
	st := p.state(tx)
	if st.ts.IsEmpty() {
		return version.Version{}, errors.New("mvtl-eps-clock: no lockable timestamps left")
	}
	m, _ := st.ts.Max()
	v, got, err := readUpTo(ctx, tx, tx.Key(k), m, true)
	if err != nil {
		return version.Version{}, err
	}
	if got.IsEmpty() {
		return version.Version{}, errors.New("mvtl-eps-clock: no timestamps read-lockable")
	}
	st.ts = st.ts.IntersectInterval(timestamp.Span(v.TS.Next(), got.Hi))
	if st.ts.IsEmpty() {
		return version.Version{}, errors.New("mvtl-eps-clock: read shrank the timestamp interval to nothing")
	}
	return v, nil
}

// CommitLocks implements core.Policy: nothing to do (Alg. 7 line 18).
func (p *EpsilonClock) CommitLocks(context.Context, *core.Txn) error { return nil }

// CommitTS implements core.Policy: the smallest commonly locked
// timestamp (Alg. 7 line 19), which in a serial execution is at most the
// transaction's real start time — the key to avoiding serial aborts.
func (p *EpsilonClock) CommitTS(_ *core.Txn, candidates timestamp.Set) (timestamp.Timestamp, bool) {
	return candidates.Min()
}

// CommitGC implements core.Policy (Alg. 7 line 20).
func (p *EpsilonClock) CommitGC(*core.Txn) bool { return true }
