// Package kv defines the transactional key-value interface shared by
// every engine in this repository: the MVTL engine with its policies, the
// MVTO+ and 2PL baselines, and the distributed MVTIL client. Workloads
// and benchmarks are written against this interface so that all engines
// can be driven and compared uniformly (§8.3).
package kv

import (
	"context"
	"errors"
)

// Common errors surfaced by engines.
var (
	// ErrAborted reports that the transaction aborted and its effects
	// were discarded; the caller may retry with a fresh transaction.
	ErrAborted = errors.New("kv: transaction aborted")
	// ErrTxnDone reports an operation on a transaction that has already
	// committed or aborted.
	ErrTxnDone = errors.New("kv: transaction already finished")
	// ErrDeadlock reports that the transaction was aborted as the
	// victim of a detected deadlock cycle (always wrapped together with
	// ErrAborted). Unlike an ordinary conflict abort, the conflicting
	// work was killed on purpose, so the right retry policy is an
	// immediate restart rather than a backoff.
	ErrDeadlock = errors.New("kv: deadlock victim")
	// ErrUncertain reports that the commit outcome is unknown: the
	// decision request was sent but its reply was lost (partition,
	// crash, timeout), so the transaction may be durably committed or
	// may later abort. It is NOT wrapped with ErrAborted — callers must
	// not count it as an abort, must not blind-retry the transaction
	// (a retry could double-apply its writes), and must treat the
	// transaction's effects as possibly visible.
	ErrUncertain = errors.New("kv: commit outcome uncertain")
)

// DB is a transactional store.
type DB interface {
	// Begin starts a transaction.
	Begin(ctx context.Context) (Txn, error)
}

// MultiGetter is the optional batched read interface: transactions with
// a remote read path implement it to fetch a whole static read set in
// one round trip per storage server instead of one per key. Semantics
// match a loop of Read calls (buffered writes are served locally, a nil
// value means ⊥), except that all keys are read under the transaction's
// bound at call time.
type MultiGetter interface {
	GetMulti(ctx context.Context, keys []string) (map[string][]byte, error)
}

// GetMulti reads keys through tx's batched read path when it has one,
// falling back to one Read per key. The result has one entry per
// distinct key.
func GetMulti(ctx context.Context, tx Txn, keys []string) (map[string][]byte, error) {
	if mg, ok := tx.(MultiGetter); ok {
		return mg.GetMulti(ctx, keys)
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if _, done := out[k]; done {
			continue // duplicates read once, as in the batched path
		}
		v, err := tx.Read(ctx, k)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// Txn is a single transaction. Implementations are not safe for
// concurrent use by multiple goroutines; each transaction belongs to one
// client thread (§8.1).
type Txn interface {
	// Read returns the value of key within the transaction. A nil value
	// with a nil error means the key holds ⊥ (never written).
	Read(ctx context.Context, key string) ([]byte, error)
	// Write buffers a value for key; it becomes visible to other
	// transactions only after Commit.
	Write(ctx context.Context, key string, value []byte) error
	// Commit tries to commit. It returns nil on success and ErrAborted
	// (possibly wrapped) if the transaction could not be serialized.
	Commit(ctx context.Context) error
	// Abort discards the transaction. Aborting a finished transaction
	// is a no-op.
	Abort(ctx context.Context) error
	// ID returns a unique transaction identifier.
	ID() uint64
}
