package baseline_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/baseline"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

func newMVTO() *baseline.MVTO {
	var src clock.Logical
	return baseline.NewMVTO(clock.NewProcess(&src, 1), nil)
}

func TestMVTORoundtrip(t *testing.T) {
	db := newMVTO()
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	if err := tx.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin(ctx)
	v, err := tx2.Read(ctx, "x")
	if err != nil || string(v) != "v1" {
		t.Fatalf("read %q %v", v, err)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMVTOReadYourWrites(t *testing.T) {
	db := newMVTO()
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	_ = tx.Write(ctx, "x", []byte("mine"))
	v, _ := tx.Read(ctx, "x")
	if string(v) != "mine" {
		t.Fatalf("got %q", v)
	}
}

func TestMVTOWriteBelowReadAborts(t *testing.T) {
	db := newMVTO()
	ctx := context.Background()
	// T1 (earlier ts) begins first.
	t1, _ := db.Begin(ctx)
	t2, _ := db.Begin(ctx)
	// T2 reads x: bumps readTS of ⊥ to ts2.
	if _, err := t2.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// T1 writes x at ts1 < ts2: must abort.
	_ = t1.Write(ctx, "x", []byte("late"))
	if err := t1.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
}

func TestMVTOGhostAbort(t *testing.T) {
	// The §5.5 ghost schedule against native MVTO+: T1 aborts due to the
	// already-aborted T2's read timestamp.
	db := newMVTO()
	ctx := context.Background()
	t1, _ := db.Begin(ctx)
	t2, _ := db.Begin(ctx)
	t3, _ := db.Begin(ctx)

	if _, err := t3.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	_ = t2.Write(ctx, "x", nil)
	if err := t2.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("T2 should abort: %v", err)
	}
	_ = t1.Write(ctx, "y", nil)
	if err := t1.Commit(ctx); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("T1 should ghost-abort under MVTO+: %v", err)
	}
}

func TestMVTOBlindWritesCommit(t *testing.T) {
	db := newMVTO()
	ctx := context.Background()
	t1, _ := db.Begin(ctx)
	t2, _ := db.Begin(ctx)
	_ = t1.Write(ctx, "x", []byte("a"))
	_ = t2.Write(ctx, "x", []byte("b"))
	if err := t2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMVTOPurge(t *testing.T) {
	var src clock.Manual
	db := baseline.NewMVTO(clock.NewProcess(&src, 1), nil)
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		src.Set(int64(i * 10))
		tx, _ := db.Begin(ctx)
		_ = tx.Write(ctx, "x", []byte{byte(i)})
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	_, versions := db.StateStats()
	if versions != 6 {
		t.Fatalf("versions = %d", versions)
	}
	if removed := db.PurgeBelow(timestamp.New(35, 0)); removed != 3 {
		t.Fatalf("removed = %d", removed)
	}
	// A reader whose timestamp falls below the purge floor aborts.
	old, err := db.BeginAt(ctx, timestamp.New(15, 99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Read(ctx, "x"); err == nil {
		t.Fatal("read below purge floor must abort")
	}
}

func TestTwoPLRoundtrip(t *testing.T) {
	db := baseline.NewTwoPL(nil)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	if err := tx.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin(ctx)
	v, err := tx2.Read(ctx, "x")
	if err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPLWriterBlocksReader(t *testing.T) {
	db := baseline.NewTwoPL(nil)
	ctx := context.Background()
	w, _ := db.Begin(ctx)
	if err := w.Write(ctx, "x", []byte("w")); err != nil {
		t.Fatal(err)
	}
	// Reader times out while the writer holds the lock.
	rctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	r, _ := db.Begin(rctx)
	if _, err := r.Read(rctx, "x"); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("reader should abort on timeout, got %v", err)
	}
	// After the writer commits, readers proceed.
	if err := w.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	r2, _ := db.Begin(ctx)
	if v, err := r2.Read(ctx, "x"); err != nil || string(v) != "w" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestTwoPLSharedReaders(t *testing.T) {
	db := baseline.NewTwoPL(nil)
	ctx := context.Background()
	r1, _ := db.Begin(ctx)
	r2, _ := db.Begin(ctx)
	if _, err := r1.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	_ = r1.Commit(ctx)
	_ = r2.Commit(ctx)
}

func TestTwoPLUpgrade(t *testing.T) {
	db := baseline.NewTwoPL(nil)
	ctx := context.Background()
	tx, _ := db.Begin(ctx)
	if _, err := tx.Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(ctx, "x", []byte("up")); err != nil {
		t.Fatalf("sole reader must upgrade: %v", err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPLDeadlockResolvedByTimeout(t *testing.T) {
	db := baseline.NewTwoPL(nil)
	ctx := context.Background()
	a, _ := db.Begin(ctx)
	b, _ := db.Begin(ctx)
	if err := a.Write(ctx, "x", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ctx, "y", []byte("b")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		defer cancel()
		errs[0] = a.Write(ctx, "y", []byte("a"))
	}()
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		defer cancel()
		errs[1] = b.Write(ctx, "x", []byte("b"))
	}()
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("deadlock should abort at least one transaction")
	}
}

// runKV drives any kv.DB with a random workload; returns commits.
func runKV(t *testing.T, db kv.DB, seedBase int64) int {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits := 0
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := 0
			for i := 0; i < 60; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
				tx, err := db.Begin(ctx)
				if err != nil {
					cancel()
					continue
				}
				ok := true
				for op := 0; op < 5; op++ {
					k := fmt.Sprintf("k%d", rng.Intn(10))
					if rng.Intn(2) == 0 {
						_, err = tx.Read(ctx, k)
					} else {
						err = tx.Write(ctx, k, []byte{byte(op)})
					}
					if err != nil {
						ok = false
						break
					}
				}
				if ok && tx.Commit(ctx) == nil {
					local++
				} else {
					_ = tx.Abort(ctx)
				}
				cancel()
			}
			mu.Lock()
			commits += local
			mu.Unlock()
		}(seedBase + int64(g))
	}
	wg.Wait()
	return commits
}

func TestMVTOStressSerializable(t *testing.T) {
	var rec history.Recorder
	var src clock.Logical
	db := baseline.NewMVTO(clock.NewProcess(&src, 1), &rec)
	if commits := runKV(t, db, 1); commits == 0 {
		t.Fatal("nothing committed")
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("MVTO+ serializability violated: %v", err)
	}
}

func TestTwoPLStressSerializable(t *testing.T) {
	var rec history.Recorder
	db := baseline.NewTwoPL(&rec)
	if commits := runKV(t, db, 100); commits == 0 {
		t.Fatal("nothing committed")
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("2PL serializability violated: %v", err)
	}
}
