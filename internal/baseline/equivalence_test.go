package baseline_test

// Equivalence tests for Theorems 5 and 6: MVTL-TO specializes MVTL to
// behave exactly like MVTO+, and MVTL-Pessimistic like pessimistic
// concurrency control. We replay identical randomly generated workloads
// (single-threaded, so decisions are deterministic) against the MVTL
// policy and the native baseline and require identical commit/abort
// decisions and identical read results.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lpd-epfl/mvtl/internal/baseline"
	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/core"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/policy"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// wlOp is one step of a generated workload.
type wlOp struct {
	txn    int // workload-level transaction index
	kind   int // 0=read 1=write 2=commit 3=abort
	key    string
	value  []byte
	clockT int64 // clock reading when the transaction starts
}

// genWorkload builds an interleaved multi-transaction workload. Every
// transaction gets a distinct, increasing start clock; operations of
// different transactions interleave.
func genWorkload(rng *rand.Rand, txns, keys int) []wlOp {
	type txnPlan struct {
		ops  []wlOp
		next int
	}
	plans := make([]*txnPlan, txns)
	for i := range plans {
		n := 1 + rng.Intn(5)
		p := &txnPlan{}
		for j := 0; j < n; j++ {
			op := wlOp{txn: i, key: fmt.Sprintf("k%d", rng.Intn(keys)), clockT: int64((i + 1) * 10)}
			if rng.Intn(2) == 0 {
				op.kind = 0
			} else {
				op.kind = 1
				op.value = []byte(fmt.Sprintf("t%d-%d", i, j))
			}
			p.ops = append(p.ops, op)
		}
		end := wlOp{txn: i, clockT: int64((i + 1) * 10)}
		if rng.Intn(8) == 0 {
			end.kind = 3
		} else {
			end.kind = 2
		}
		p.ops = append(p.ops, end)
		plans[i] = p
	}
	var out []wlOp
	live := make([]int, txns)
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 {
		i := rng.Intn(len(live))
		p := plans[live[i]]
		out = append(out, p.ops[p.next])
		p.next++
		if p.next == len(p.ops) {
			live = append(live[:i], live[i+1:]...)
		}
	}
	return out
}

// replayResult captures observable behaviour of a workload replay.
type replayResult struct {
	committed []bool
	reads     []string // rendered "txn/key=value" in execution order
}

// replay runs ops against db; per-transaction clocks are pinned via
// mkTxn, which starts transaction i.
func replay(t *testing.T, ops []wlOp, txns int, mkTxn func(i int, clockT int64) kv.Txn) replayResult {
	t.Helper()
	ctx := context.Background()
	res := replayResult{committed: make([]bool, txns)}
	txs := make([]kv.Txn, txns)
	dead := make([]bool, txns)
	for _, op := range ops {
		if dead[op.txn] {
			continue
		}
		if txs[op.txn] == nil {
			txs[op.txn] = mkTxn(op.txn, op.clockT)
		}
		tx := txs[op.txn]
		switch op.kind {
		case 0:
			v, err := tx.Read(ctx, op.key)
			if err != nil {
				dead[op.txn] = true
				continue
			}
			res.reads = append(res.reads, fmt.Sprintf("%d/%s=%s", op.txn, op.key, v))
		case 1:
			if err := tx.Write(ctx, op.key, op.value); err != nil {
				dead[op.txn] = true
			}
		case 2:
			if err := tx.Commit(ctx); err == nil {
				res.committed[op.txn] = true
			}
			dead[op.txn] = true
		case 3:
			_ = tx.Abort(ctx)
			dead[op.txn] = true
		}
	}
	return res
}

// TestTOEquivalentToMVTO replays random workloads against MVTL-TO and
// native MVTO+ and requires identical commit decisions and read results
// (Theorem 5).
func TestTOEquivalentToMVTO(t *testing.T) {
	const rounds = 60
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		const txns, keys = 8, 4
		ops := genWorkload(rng, txns, keys)

		var srcA clock.Logical
		mvtlDB := core.New(policy.NewTO(clock.NewProcess(&srcA, 0)), core.Options{})
		a := replay(t, ops, txns, func(i int, clockT int64) kv.Txn {
			tx, err := mvtlDB.Begin(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var m clock.Manual
			m.Set(clockT)
			tx.Clock = clock.NewProcess(&m, int32(i+1))
			return tx
		})

		var srcB clock.Logical
		mvtoDB := baseline.NewMVTO(clock.NewProcess(&srcB, 0), nil)
		b := replay(t, ops, txns, func(i int, clockT int64) kv.Txn {
			// Force the same timestamp (clockT, i+1) as MVTL-TO got.
			tx, err := mvtoDB.BeginAt(context.Background(), timestamp.New(clockT, int32(i+1)))
			if err != nil {
				t.Fatal(err)
			}
			return tx
		})

		if fmt.Sprint(a.committed) != fmt.Sprint(b.committed) {
			t.Fatalf("round %d: commit decisions diverge\nops: %+v\nmvtl-to: %v\nmvto+:  %v",
				round, ops, a.committed, b.committed)
		}
		if fmt.Sprint(a.reads) != fmt.Sprint(b.reads) {
			t.Fatalf("round %d: reads diverge\nmvtl-to: %v\nmvto+:  %v", round, a.reads, b.reads)
		}
	}
}

// TestPessimisticNeverAbortsSerial replays serial (non-interleaved)
// workloads against MVTL-Pessimistic: like 2PL, a serial execution never
// aborts and reads match the 2PL baseline (Theorem 6).
func TestPessimisticNeverAbortsSerial(t *testing.T) {
	const rounds = 40
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) + 500))
		const txns, keys = 6, 3
		// Serial workload: transactions do not interleave.
		var ops []wlOp
		for i := 0; i < txns; i++ {
			n := 1 + rng.Intn(4)
			for j := 0; j < n; j++ {
				kind := rng.Intn(2)
				ops = append(ops, wlOp{
					txn: i, kind: kind,
					key:    fmt.Sprintf("k%d", rng.Intn(keys)),
					value:  []byte(fmt.Sprintf("t%d-%d", i, j)),
					clockT: int64((i + 1) * 10),
				})
			}
			ops = append(ops, wlOp{txn: i, kind: 2, clockT: int64((i + 1) * 10)})
		}

		pessDB := core.New(policy.NewPessimistic(), core.Options{})
		a := replay(t, ops, txns, func(i int, clockT int64) kv.Txn {
			tx, err := pessDB.Begin(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return tx
		})
		for i, ok := range a.committed {
			if !ok {
				t.Fatalf("round %d: serial txn %d aborted under MVTL-Pessimistic", round, i)
			}
		}

		twoplDB := baseline.NewTwoPL(nil)
		b := replay(t, ops, txns, func(i int, clockT int64) kv.Txn {
			tx, err := twoplDB.Begin(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return tx
		})
		if fmt.Sprint(a.reads) != fmt.Sprint(b.reads) {
			t.Fatalf("round %d: reads diverge\npessimistic: %v\n2pl:        %v", round, a.reads, b.reads)
		}
	}
}
