package baseline

import (
	"context"
	"fmt"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// rwLock is a readers-writer object lock with context-aware waiting, as
// used by strict 2PL. Deadlocks are resolved by the caller's context
// deadline (the paper's 2PL baseline uses timeouts tuned for maximum
// throughput, §8.4.1).
type rwLock struct {
	mu      sync.Mutex
	readers map[uint64]bool
	writer  uint64 // 0 = none
	changed chan struct{}
}

func newRWLock() *rwLock {
	return &rwLock{readers: map[uint64]bool{}, changed: make(chan struct{})}
}

func (l *rwLock) broadcastLocked() {
	close(l.changed)
	l.changed = make(chan struct{})
}

// lockRead acquires a shared lock for owner, waiting while another owner
// holds the write lock.
func (l *rwLock) lockRead(ctx context.Context, owner uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.writer == 0 || l.writer == owner {
			l.readers[owner] = true
			return nil
		}
		if err := l.waitLocked(ctx); err != nil {
			return err
		}
	}
}

// lockWrite acquires the exclusive lock for owner, upgrading its own
// read lock if it is the sole reader.
func (l *rwLock) lockWrite(ctx context.Context, owner uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		othersReading := len(l.readers) > 1 || (len(l.readers) == 1 && !l.readers[owner])
		if (l.writer == 0 || l.writer == owner) && !othersReading {
			l.writer = owner
			return nil
		}
		if err := l.waitLocked(ctx); err != nil {
			return err
		}
	}
}

// unlock releases every lock owner holds on this object.
func (l *rwLock) unlock(owner uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	changed := false
	if l.readers[owner] {
		delete(l.readers, owner)
		changed = true
	}
	if l.writer == owner {
		l.writer = 0
		changed = true
	}
	if changed {
		l.broadcastLocked()
	}
}

func (l *rwLock) waitLocked(ctx context.Context) error {
	ch := l.changed
	l.mu.Unlock()
	select {
	case <-ch:
		l.mu.Lock()
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		return ctx.Err()
	}
}

// twoPLKey is the per-key state: one object lock and one current value.
type twoPLKey struct {
	lock *rwLock

	valMu sync.Mutex
	value []byte
	// versionTS is a logical tag (the commit sequence number of the
	// writer) used only for history checking.
	versionTS timestamp.Timestamp
}

// TwoPL is the strict two-phase-locking engine: transactions lock whole
// objects (shared for reads, exclusive for writes), hold all locks to
// commit, and release them afterwards — the paper's lock-based baseline.
type TwoPL struct {
	rec  *history.Recorder
	mu   sync.RWMutex
	keys map[string]*twoPLKey

	idMu     sync.Mutex
	nextID   uint64
	commitSq int64
}

var _ kv.DB = (*TwoPL)(nil)

// NewTwoPL returns an empty 2PL store. rec may be nil.
func NewTwoPL(rec *history.Recorder) *TwoPL {
	return &TwoPL{rec: rec, keys: make(map[string]*twoPLKey), nextID: 1}
}

func (db *TwoPL) key(k string) *twoPLKey {
	db.mu.RLock()
	ks, ok := db.keys[k]
	db.mu.RUnlock()
	if ok {
		return ks
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ks, ok = db.keys[k]; ok {
		return ks
	}
	ks = &twoPLKey{lock: newRWLock()}
	db.keys[k] = ks
	return ks
}

// Begin implements kv.DB.
func (db *TwoPL) Begin(ctx context.Context) (kv.Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.idMu.Lock()
	id := db.nextID
	db.nextID++
	db.idMu.Unlock()
	return &twoPLTxn{db: db, id: id, writes: map[string][]byte{}, locked: map[string]*twoPLKey{}}, nil
}

// twoPLTxn is one 2PL transaction.
type twoPLTxn struct {
	db     *TwoPL
	id     uint64
	reads  []history.Read
	writes map[string][]byte
	order  []string
	locked map[string]*twoPLKey
	done   bool
}

var _ kv.Txn = (*twoPLTxn)(nil)

// ID implements kv.Txn.
func (tx *twoPLTxn) ID() uint64 { return tx.id }

// Read implements kv.Txn: take the shared object lock, then read the
// single current value.
func (tx *twoPLTxn) Read(ctx context.Context, k string) ([]byte, error) {
	if tx.done {
		return nil, kv.ErrTxnDone
	}
	if v, ok := tx.writes[k]; ok {
		return v, nil
	}
	ks := tx.db.key(k)
	if err := ks.lock.lockRead(ctx, tx.id); err != nil {
		tx.releaseAndAbort()
		return nil, fmt.Errorf("2pl read %q: %w (%v)", k, kv.ErrAborted, err)
	}
	tx.locked[k] = ks
	ks.valMu.Lock()
	v, vts := ks.value, ks.versionTS
	ks.valMu.Unlock()
	tx.reads = append(tx.reads, history.Read{Key: k, VersionTS: vts})
	return v, nil
}

// Write implements kv.Txn: take the exclusive object lock immediately
// (pessimistic), buffer the value until commit.
func (tx *twoPLTxn) Write(ctx context.Context, k string, v []byte) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	ks := tx.db.key(k)
	if err := ks.lock.lockWrite(ctx, tx.id); err != nil {
		tx.releaseAndAbort()
		return fmt.Errorf("2pl write %q: %w (%v)", k, kv.ErrAborted, err)
	}
	tx.locked[k] = ks
	if _, dup := tx.writes[k]; !dup {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = v
	return nil
}

// Commit implements kv.Txn: install buffered writes under the held
// exclusive locks, then release everything (strictness).
func (tx *twoPLTxn) Commit(context.Context) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	tx.done = true
	tx.db.idMu.Lock()
	tx.db.commitSq++
	seq := tx.db.commitSq
	tx.db.idMu.Unlock()
	cts := timestamp.New(seq, 0)
	for _, k := range tx.order {
		ks := tx.locked[k]
		ks.valMu.Lock()
		ks.value = tx.writes[k]
		ks.versionTS = cts
		ks.valMu.Unlock()
	}
	if tx.db.rec != nil {
		tx.db.rec.Record(history.Commit{
			ID:        tx.id,
			CommitTS:  cts,
			Reads:     tx.reads,
			WriteKeys: append([]string(nil), tx.order...),
		})
	}
	tx.release()
	return nil
}

// Abort implements kv.Txn.
func (tx *twoPLTxn) Abort(context.Context) error {
	if tx.done {
		return nil
	}
	tx.releaseAndAbort()
	return nil
}

func (tx *twoPLTxn) releaseAndAbort() {
	tx.done = true
	tx.release()
}

func (tx *twoPLTxn) release() {
	for _, ks := range tx.locked {
		ks.lock.unlock(tx.id)
	}
}
