// Package baseline implements the two comparison engines of the paper's
// evaluation (§8): MVTO+ — multiversion timestamp ordering without
// cascading aborts — and strict two-phase locking (2PL). Both expose the
// same kv interface as the MVTL engine so workloads can drive all three
// uniformly.
package baseline

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/lpd-epfl/mvtl/internal/clock"
	"github.com/lpd-epfl/mvtl/internal/history"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/timestamp"
)

// mvtoVersion is one committed version with its read timestamp: the
// largest transaction timestamp that read it (§3).
type mvtoVersion struct {
	ts     timestamp.Timestamp
	value  []byte
	readTS timestamp.Timestamp
}

// mvtoKey is the per-key state: committed versions sorted by timestamp.
type mvtoKey struct {
	mu       sync.Mutex
	versions []mvtoVersion // sorted by ts; seeded with ⊥@Zero
	floor    timestamp.Timestamp
}

// read returns the latest version before t and bumps its read timestamp
// to t, atomically (the classic MVTO read rule).
func (k *mvtoKey) read(t timestamp.Timestamp) ([]byte, timestamp.Timestamp, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if t.AtOrBefore(k.floor) {
		return nil, timestamp.Timestamp{}, fmt.Errorf("mvto: read at %v below purge floor %v: %w", t, k.floor, kv.ErrAborted)
	}
	i := sort.Search(len(k.versions), func(i int) bool { return k.versions[i].ts.AtOrAfter(t) })
	if i == 0 {
		return nil, timestamp.Timestamp{}, fmt.Errorf("mvto: no version before %v: %w", t, kv.ErrAborted)
	}
	v := &k.versions[i-1]
	if t.After(v.readTS) {
		v.readTS = t
	}
	return v.value, v.ts, nil
}

// validateWrite checks the MVTO write rule at commit: writing at t is
// allowed iff the latest version before t has not been read by any
// transaction beyond t. It must be called with the key locked.
func (k *mvtoKey) validateWriteLocked(t timestamp.Timestamp) error {
	i := sort.Search(len(k.versions), func(i int) bool { return k.versions[i].ts.AtOrAfter(t) })
	if i == 0 {
		return fmt.Errorf("mvto: write at %v below history: %w", t, kv.ErrAborted)
	}
	if i < len(k.versions) && k.versions[i].ts == t {
		return fmt.Errorf("mvto: version exists at %v: %w", t, kv.ErrAborted)
	}
	if prev := k.versions[i-1]; prev.readTS.After(t) {
		return fmt.Errorf("mvto: version at %v read at %v > write %v: %w", prev.ts, prev.readTS, t, kv.ErrAborted)
	}
	return nil
}

// installLocked exposes a committed version at t; the write rule must
// have been validated under the same critical section.
func (k *mvtoKey) installLocked(t timestamp.Timestamp, value []byte) {
	i := sort.Search(len(k.versions), func(i int) bool { return k.versions[i].ts.AtOrAfter(t) })
	k.versions = append(k.versions, mvtoVersion{})
	copy(k.versions[i+1:], k.versions[i:])
	k.versions[i] = mvtoVersion{ts: t, value: value, readTS: t}
}

// purgeBelow keeps the newest version below t and drops the rest.
func (k *mvtoKey) purgeBelow(t timestamp.Timestamp) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	i := sort.Search(len(k.versions), func(i int) bool { return k.versions[i].ts.AtOrAfter(t) })
	if i <= 1 {
		return 0
	}
	removed := i - 1
	k.versions = append(k.versions[:0], k.versions[removed:]...)
	if k.versions[0].ts.After(k.floor) {
		k.floor = k.versions[0].ts
	}
	return removed
}

// MVTO is the MVTO+ engine: multiversion timestamp ordering that never
// reads uncommitted data (buffered writes are installed only at commit),
// so it has no cascading aborts — the paper's principal multiversion
// baseline.
type MVTO struct {
	clk  *clock.Process
	rec  *history.Recorder
	mu   sync.RWMutex
	keys map[string]*mvtoKey

	idMu   sync.Mutex
	nextID uint64
}

var _ kv.DB = (*MVTO)(nil)

// NewMVTO returns an empty MVTO+ store drawing timestamps from clk. rec
// may be nil.
func NewMVTO(clk *clock.Process, rec *history.Recorder) *MVTO {
	return &MVTO{clk: clk, rec: rec, keys: make(map[string]*mvtoKey), nextID: 1}
}

func (db *MVTO) key(k string) *mvtoKey {
	db.mu.RLock()
	ks, ok := db.keys[k]
	db.mu.RUnlock()
	if ok {
		return ks
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ks, ok = db.keys[k]; ok {
		return ks
	}
	ks = &mvtoKey{versions: []mvtoVersion{{ts: timestamp.Zero}}}
	db.keys[k] = ks
	return ks
}

// Begin implements kv.DB.
func (db *MVTO) Begin(ctx context.Context) (kv.Txn, error) {
	return db.BeginAt(ctx, db.clk.Now())
}

// BeginAt starts a transaction with an explicit timestamp, bypassing the
// clock. Timestamps must be unique per transaction; intended for tests
// and for the distributed client, which draws timestamps from its own
// clock.
func (db *MVTO) BeginAt(ctx context.Context, ts timestamp.Timestamp) (kv.Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.idMu.Lock()
	id := db.nextID
	db.nextID++
	db.idMu.Unlock()
	return &mvtoTxn{db: db, id: id, ts: ts, writes: map[string][]byte{}}, nil
}

// StateStats reports the number of keys and versions held, for the
// state-size experiment (Figure 6).
func (db *MVTO) StateStats() (keys, versions int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, ks := range db.keys {
		ks.mu.Lock()
		versions += len(ks.versions)
		ks.mu.Unlock()
		keys++
	}
	return keys, versions
}

// PurgeBelow discards versions below the bound, keeping one boundary
// version per key.
func (db *MVTO) PurgeBelow(bound timestamp.Timestamp) int {
	db.mu.RLock()
	list := make([]*mvtoKey, 0, len(db.keys))
	for _, ks := range db.keys {
		list = append(list, ks)
	}
	db.mu.RUnlock()
	removed := 0
	for _, ks := range list {
		removed += ks.purgeBelow(bound)
	}
	return removed
}

// mvtoTxn is one MVTO+ transaction.
type mvtoTxn struct {
	db     *MVTO
	id     uint64
	ts     timestamp.Timestamp
	reads  []history.Read
	writes map[string][]byte
	order  []string
	done   bool
}

var _ kv.Txn = (*mvtoTxn)(nil)

// ID implements kv.Txn.
func (tx *mvtoTxn) ID() uint64 { return tx.id }

// Read implements kv.Txn: reads never block and never abort (except on
// purged history), the hallmark of timestamp ordering.
func (tx *mvtoTxn) Read(_ context.Context, k string) ([]byte, error) {
	if tx.done {
		return nil, kv.ErrTxnDone
	}
	if v, ok := tx.writes[k]; ok {
		return v, nil
	}
	v, vts, err := tx.db.key(k).read(tx.ts)
	if err != nil {
		tx.done = true
		return nil, err
	}
	tx.reads = append(tx.reads, history.Read{Key: k, VersionTS: vts})
	return v, nil
}

// Write implements kv.Txn: buffered until commit (the "+" in MVTO+).
func (tx *mvtoTxn) Write(_ context.Context, k string, v []byte) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	if _, dup := tx.writes[k]; !dup {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = v
	return nil
}

// Commit implements kv.Txn: validate the write rule on every written key
// under the keys' locks (taken in sorted order), then install.
func (tx *mvtoTxn) Commit(context.Context) error {
	if tx.done {
		return kv.ErrTxnDone
	}
	tx.done = true
	if len(tx.order) > 0 {
		keys := append([]string(nil), tx.order...)
		sort.Strings(keys)
		states := make([]*mvtoKey, len(keys))
		for i, k := range keys {
			states[i] = tx.db.key(k)
			states[i].mu.Lock()
		}
		defer func() {
			for _, ks := range states {
				ks.mu.Unlock()
			}
		}()
		for i, k := range keys {
			_ = k
			if err := states[i].validateWriteLocked(tx.ts); err != nil {
				return err
			}
		}
		for i, k := range keys {
			states[i].installLocked(tx.ts, tx.writes[k])
		}
	}
	if tx.db.rec != nil {
		tx.db.rec.Record(history.Commit{
			ID:        tx.id,
			CommitTS:  tx.ts,
			Reads:     tx.reads,
			WriteKeys: append([]string(nil), tx.order...),
		})
	}
	return nil
}

// Abort implements kv.Txn. As in MVTO+, read timestamps bumped by this
// transaction stay behind — the source of ghost aborts (§5.5).
func (tx *mvtoTxn) Abort(context.Context) error {
	tx.done = true
	return nil
}
