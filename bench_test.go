// Benchmarks regenerating the paper's evaluation (§8): one benchmark per
// figure, plus ablations of the design choices called out in DESIGN.md.
// Each benchmark prints the same data series the corresponding figure
// plots; run them all with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-versus-measured comparison. The
// sweeps are scaled down from the paper's test beds (hundreds of
// machines/clients, 20s windows) to a single machine; shapes, not
// absolute numbers, are the reproduction target.
package mvtl_test

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/lpd-epfl/mvtl/internal/bench"
	"github.com/lpd-epfl/mvtl/internal/client"
	"github.com/lpd-epfl/mvtl/internal/cluster"
	"github.com/lpd-epfl/mvtl/internal/kv"
	"github.com/lpd-epfl/mvtl/internal/workload"

	mvtl "github.com/lpd-epfl/mvtl"
)

// storeKV adapts the public Store API to the workload driver.
type storeKV struct{ s *mvtl.Store }

func (s storeKV) Begin(ctx context.Context) (kv.Txn, error) {
	tx, err := s.s.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return storeTxn{t: tx}, nil
}

type storeTxn struct{ t *mvtl.Txn }

func (s storeTxn) Read(ctx context.Context, k string) ([]byte, error) { return s.t.Get(ctx, k) }
func (s storeTxn) Write(ctx context.Context, k string, v []byte) error {
	return s.t.Set(ctx, k, v)
}
func (s storeTxn) Commit(ctx context.Context) error { return s.t.Commit(ctx) }
func (s storeTxn) Abort(ctx context.Context) error  { return s.t.Abort(ctx) }
func (s storeTxn) ID() uint64                       { return s.t.ID() }

// benchScale returns the sweep scale; -short halves the work.
func benchScale(b *testing.B) bench.Scale {
	b.Helper()
	if testing.Short() {
		return bench.QuickScale()
	}
	return bench.DefaultScale()
}

// reportBest records the best MVTIL row versus the best baseline row as
// benchmark metrics.
func reportBest(b *testing.B, rows []bench.Row) {
	b.Helper()
	var bestTIL, bestBase float64
	for _, r := range rows {
		switch r.Mode {
		case client.ModeTILEarly, client.ModeTILLate:
			if r.Throughput > bestTIL {
				bestTIL = r.Throughput
			}
		default:
			if r.Throughput > bestBase {
				bestBase = r.Throughput
			}
		}
	}
	b.ReportMetric(bestTIL, "mvtil-txs/s")
	b.ReportMetric(bestBase, "baseline-txs/s")
	if bestBase > 0 {
		b.ReportMetric(bestTIL/bestBase, "speedup")
	}
}

func BenchmarkFig1ConcurrencyLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig1(context.Background(), os.Stdout, benchScale(b))
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, rows)
	}
}

func BenchmarkFig2ConcurrencyCloud(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig2(context.Background(), os.Stdout, benchScale(b))
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, rows)
	}
}

func BenchmarkFig3WriteFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3(context.Background(), os.Stdout, benchScale(b))
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, rows)
	}
}

func BenchmarkFig4SmallTransactions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4(context.Background(), os.Stdout, benchScale(b))
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, rows)
	}
}

func BenchmarkFig5ServerScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5(context.Background(), os.Stdout, benchScale(b))
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, rows)
	}
}

func BenchmarkFig6StateSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig6(context.Background(), os.Stdout, benchScale(b))
		if err != nil {
			b.Fatal(err)
		}
		// Report the final state sizes: without GC they grow; with GC
		// they stay bounded.
		for name, pts := range series {
			if len(pts) == 0 {
				continue
			}
			last := pts[len(pts)-1]
			b.ReportMetric(float64(last.Locks), name+"-locks")
		}
	}
}

func BenchmarkFig7PerformanceOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(context.Background(), os.Stdout, benchScale(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ----------------------------------------------------------------

// BenchmarkAblationEarlyVsLate compares the MVTIL commit-timestamp
// choice under a write-heavy contended cell.
func BenchmarkAblationEarlyVsLate(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		for _, mode := range []client.Mode{client.ModeTILEarly, client.ModeTILLate} {
			row, err := bench.RunCell(context.Background(), bench.Cell{
				Mode: mode, Bed: cluster.BedLocal, Servers: 3,
				Clients: 32, OpsPerTxn: 12, WriteFrac: 0.5, Keys: 2_000,
				Delta: 5000, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Println("ablation early-vs-late:", row)
			b.ReportMetric(row.Throughput, mode.String()+"-txs/s")
		}
	}
}

// BenchmarkAblationDelta sweeps the MVTIL interval width Δ: wider
// intervals give more serialization points but increase lock footprint
// and conflicts.
func BenchmarkAblationDelta(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		for _, d := range []int64{500, 5_000, 50_000} {
			row, err := bench.RunCell(context.Background(), bench.Cell{
				Mode: client.ModeTILEarly, Bed: cluster.BedLocal, Servers: 3,
				Clients: 32, OpsPerTxn: 12, WriteFrac: 0.5, Keys: 2_000,
				Delta: d, WarmUp: sc.WarmUp, Measure: sc.Measure,
			})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("ablation delta=%dus: %v\n", d, row)
			b.ReportMetric(row.CommitRate, fmt.Sprintf("commit-rate-d%d", d))
		}
	}
}

// BenchmarkAblationRestart compares plain aborts with the paper's
// restart-on-abort client behaviour (§8.1).
func BenchmarkAblationRestart(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		for _, retry := range []bool{false, true} {
			row, err := bench.RunCell(context.Background(), bench.Cell{
				Mode: client.ModeTILEarly, Bed: cluster.BedLocal, Servers: 3,
				Clients: 32, OpsPerTxn: 12, WriteFrac: 0.5, Keys: 2_000,
				Delta: 5000, WarmUp: sc.WarmUp, Measure: sc.Measure, Retry: retry,
			})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("ablation restart=%v: %v\n", retry, row)
			b.ReportMetric(row.Throughput, fmt.Sprintf("retry-%v-txs/s", retry))
		}
	}
}

// BenchmarkAblationEmbeddedPolicies compares every in-process MVTL
// policy on one contended workload (no network), isolating policy cost.
func BenchmarkAblationEmbeddedPolicies(b *testing.B) {
	algos := []mvtl.Algorithm{
		mvtl.TILEarly, mvtl.TILLate, mvtl.TO, mvtl.Ghostbuster,
		mvtl.Pref, mvtl.EpsilonClock, mvtl.Pessimistic,
	}
	for _, a := range algos {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := mvtl.Open(mvtl.Options{Algorithm: a})
				res, err := workload.Run(context.Background(), storeKV{store}, workload.Config{
					Clients:       16,
					OpsPerTxn:     8,
					WriteFraction: 0.3,
					Keys:          1_000,
					Measure:       400 * time.Millisecond,
					TxnTimeout:    200 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput(), "txs/s")
				b.ReportMetric(res.CommitRate(), "commit-rate")
			}
		})
	}
}
