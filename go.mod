module github.com/lpd-epfl/mvtl

go 1.24
